// Package serve is the fastbfs traversal query service: it holds graphs
// resident in memory and answers many concurrent BFS queries over them,
// which is what turns the paper's single-shot engine into something that
// can sit behind heavy traffic.
//
// The layering, top to bottom:
//
//   - Admission control. Every query passes a service-wide bounded
//     queue; when it is full the service sheds the oldest queued flight
//     whose sojourn exceeded the CoDel-style target (its waiters get
//     ErrShed) to admit the newcomer, and only tail-drops with
//     ErrOverloaded when the whole queue is fresh. After BeginDrain new
//     queries get ErrDraining (HTTP 503) while admitted ones complete.
//     Each query carries a deadline; an in-flight traversal past its
//     deadline is cancelled through the engine's RunContext, and a
//     waiter whose context dies while its flight is still queued
//     releases its admission ticket immediately.
//   - Containment. Each graph has a circuit breaker: consecutive
//     engine-side failures (panics, watchdog kills, injected faults)
//     open it, failing queries fast with a typed 503 + Retry-After
//     until a cooldown admits a half-open probe. A traversal that
//     panics mid-run is recovered, its waiters get a typed error, and
//     the poisoned engine is quarantined (retired from the pool and
//     lazily rebuilt). A watchdog hard-cancels any dispatched round
//     that overruns a wall-clock multiple of its deadline budget so
//     waiters never hang on a wedged traversal.
//   - Result cache + singleflight. Completed traversals are kept in a
//     bounded per-graph LRU keyed by source (engine options are fixed
//     per service, so (graph, source, options) reduces to (graph,
//     source)); concurrent queries for the same source coalesce onto
//     one in-flight traversal.
//   - Batching scheduler. Queued sources drain through a per-graph
//     dispatcher. When a dispatch round holds at least BatchThreshold
//     distinct sources they run as ONE bit-parallel multi-source sweep
//     (internal/msbfs, up to 64 sources per sweep); smaller rounds fall
//     back to per-source runs on pooled engines. Batching is
//     load-adaptive: while one round executes, arrivals accumulate, so
//     aggregate throughput grows with offered load instead of
//     collapsing.
//   - Engine pool. Per graph, up to PoolSize reusable bfs.Engines
//     (lazily built); the pool relies on the bfs package's documented
//     engine-reuse contract and ErrEngineBusy guard.
//   - Graph lifecycle. Graphs can be loaded and unloaded while serving
//     (atomic pointer swap; see lifecycle.go), under a resident-bytes
//     budget that evicts idle graphs LRU-first. /readyz reflects
//     breaker, drain and loading state.
//
// Every layer is observable to fault injection: a deterministic
// faultinject.Injector (Config.Injector) can delay, fail or crash the
// query path at named sites — see chaos.go. Production services leave
// it nil and pay one branch per site.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/index"
	"fastbfs/internal/faultinject"
	"fastbfs/internal/msbfs"
	"fastbfs/internal/par"
	"fastbfs/tune"
)

// Service errors, mapped onto HTTP statuses by the handler in http.go.
var (
	// ErrOverloaded rejects a query because the admission queue is full
	// of flights younger than the shed target (tail drop).
	ErrOverloaded = errors.New("serve: overloaded: admission queue full")
	// ErrShed fails a queued query that was dropped oldest-first when
	// the admission queue filled while it had already waited past the
	// CoDel-style sojourn target.
	ErrShed = errors.New("serve: shed: queue sojourn exceeded target under overload")
	// ErrDraining rejects a query because the service is shutting down.
	ErrDraining = errors.New("serve: draining")
	// ErrUnknownGraph rejects a query naming a graph that is not loaded.
	ErrUnknownGraph = errors.New("serve: unknown graph")
	// ErrBadRequest rejects a malformed query (e.g. source out of range).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrWatchdog fails every waiter of a dispatched round that overran
	// the hard wall-clock multiple of its deadline budget.
	ErrWatchdog = errors.New("serve: watchdog: traversal exceeded hard deadline")
	// ErrEngineFault is the sentinel matched by *EngineFaultError.
	ErrEngineFault = errors.New("serve: engine fault")
)

// EngineFaultError fails a query whose traversal died mid-run (a panic
// inside the engine or the sweep). The offending engine, if any, was
// quarantined: retired from its pool and replaced lazily by a fresh
// build on a later acquire.
type EngineFaultError struct {
	Graph string
	Err   error
}

func (e *EngineFaultError) Error() string {
	return fmt.Sprintf("serve: graph %q: traversal died mid-run (engine quarantined): %v", e.Graph, e.Err)
}

// Unwrap exposes the recovered panic (usually a *par.PanicError).
func (e *EngineFaultError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrEngineFault) true for engine faults.
func (e *EngineFaultError) Is(target error) bool { return target == ErrEngineFault }

// Config tunes a Service. The zero value gets sensible defaults.
type Config struct {
	// PoolSize is the number of reusable engines per graph (default 2).
	PoolSize int
	// MaxQueue bounds admitted-but-unresolved traversals service-wide;
	// beyond it queries fail with ErrOverloaded (default 256).
	MaxQueue int
	// MaxBatch caps sources per multi-source sweep (default and max
	// msbfs.MaxLanes = 64).
	MaxBatch int
	// BatchThreshold is the minimum dispatch-round size that uses the
	// bit-parallel sweep instead of per-source engines (default 4).
	BatchThreshold int
	// BatchLinger, when positive, makes the dispatcher wait once per
	// round for more sources to arrive before running an undersized
	// batch. Zero (the default) favors latency: batching then emerges
	// purely from arrivals during the previous round's execution.
	BatchLinger time.Duration
	// CacheEntries is the per-graph LRU capacity in traversals (each
	// entry holds an 8-byte word per vertex). Default 32; negative
	// disables caching.
	CacheEntries int
	// DefaultTimeout bounds queries that arrive without a deadline
	// (default 5s).
	DefaultTimeout time.Duration
	// Workers is the parallelism of batched sweeps (default GOMAXPROCS).
	Workers int
	// Options configures the per-source engines; nil means
	// bfs.Default(1). Options.Hybrid also switches batched sweeps to
	// the direction-optimizing msbfs kernel, reusing the same cached
	// per-graph transpose as the engines.
	Options *bfs.Options

	// BreakerThreshold is the consecutive engine-side failures (panics,
	// watchdog kills, injected faults — never caller-budget expiries)
	// that open a graph's circuit breaker (default 5; negative
	// disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects queries with
	// a typed 503 before admitting one half-open probe (default 1s).
	BreakerCooldown time.Duration
	// WatchdogMult hard-cancels a dispatched round still running after
	// WatchdogMult × its deadline budget (the round's merged deadline,
	// or DefaultTimeout when it has none) and releases its waiters with
	// ErrWatchdog (default 4; negative disables).
	WatchdogMult int
	// ShedTarget is the CoDel-style sojourn target: when the admission
	// queue is full AND the oldest queued flight has waited longer than
	// this, that flight is shed (ErrShed) to admit the newcomer,
	// bounding queue latency instead of tail-dropping fresh work.
	// Default 500ms; negative disables shedding (pure tail drop).
	ShedTarget time.Duration
	// MaxResidentBytes bounds the summed graph payload (CSR arrays)
	// held resident. A load that would exceed it evicts idle graphs
	// LRU-first and fails with ErrResidentBudget if still over.
	// 0 means unlimited. Mapped and heap graphs both count; /stats
	// breaks the total into resident_mapped_bytes (reclaimable page
	// cache) versus heap.
	MaxResidentBytes int64
	// StateDir, when non-empty, makes the control plane durable: every
	// acknowledged admin mutation (load, unload, budget eviction) is
	// journaled there before it is acknowledged, and Recover replays
	// the journal at startup to restore the exact pre-crash serving
	// table. Empty (the default) is the stateless mode: a restart
	// forgets every loaded graph. A service built with StateDir set is
	// not Ready and rejects durable loads until Recover has run.
	StateDir string
	// SnapshotEvery compacts the journal into a snapshot after this
	// many appended records (default DefaultSnapshotEvery).
	SnapshotEvery int
	// MmapLoads makes LoadGraph map graph files read-only instead of
	// decoding them onto the heap, unless the request says otherwise.
	// Mapped loads verify the same CRC footer and traverse to byte-
	// identical results; warm restarts are bounded by page cache.
	MmapLoads bool
	// ScrubInterval, when positive, runs the background integrity
	// scrubber: every interval each resident graph and index artifact is
	// re-hashed against its on-disk CRC32 footer (for mmap'd artifacts
	// the resident arrays alias the file, so disk bit rot is visible; for
	// heap artifacts the walk catches in-memory rot). A mismatch
	// quarantines the graph (its breaker is forced open, reported by
	// /readyz) and the scrubber auto-remounts it from disk — or, for a
	// corrupt index, drops the labeling back to exact-BFS fallback and
	// triggers a rebuild with the journaled parameters. Zero (the
	// default) disables scrubbing.
	ScrubInterval time.Duration
	// ScrubRate bounds the scrubber's hash throughput in bytes/sec so
	// the re-verify walk stays low-priority next to query serving.
	// Default 256 MiB/s; negative disables the rate limit.
	ScrubRate int64
	// AutoTune calibrates a tuning profile for every graph entering the
	// serving table (see the tune package): a short model-driven pass
	// picks the VIS variant, hybrid α/β, prefetch distance, batched
	// binning and MS-BFS lane width per graph, and the profile is
	// journaled with the graph in durable mode so restarts reuse it
	// without re-calibrating. Per-load requests can override with
	// "tune":false. Off by default.
	AutoTune bool
	// Logf, when set, receives daemon-level notices (calibration
	// outcomes, journaled-profile reuse). nil discards them.
	Logf func(format string, args ...any)
	// Injector enables deterministic fault injection at the serving
	// stack's chaos sites (see chaos.go and internal/faultinject).
	// nil — the production value — disables every site.
	Injector faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxBatch <= 0 || c.MaxBatch > msbfs.MaxLanes {
		c.MaxBatch = msbfs.MaxLanes
	}
	if c.BatchThreshold <= 0 {
		c.BatchThreshold = 4
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.WatchdogMult == 0 {
		c.WatchdogMult = 4
	}
	if c.ShedTarget == 0 {
		c.ShedTarget = 500 * time.Millisecond
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	if c.ScrubRate == 0 {
		c.ScrubRate = 256 << 20
	}
	return c
}

// Service answers BFS queries over a set of resident graphs.
type Service struct {
	cfg  Config
	opts bfs.Options

	baseCtx    context.Context // cancelled only at hard shutdown
	baseCancel context.CancelFunc

	inj     faultinject.Injector
	seq     faultinject.Sequencer
	loading atomic.Int32 // graph loads in progress (for /readyz)

	// Durable control plane (nil manifest in stateless mode).
	recovering  atomic.Bool  // true from New until Recover completes
	recoveryDur atomic.Int64 // wall nanos the last Recover took

	// drained is closed by BeginDrain; background loops (the integrity
	// scrubber) select on it so a graceful Shutdown's wg.Wait returns
	// without needing the hard baseCancel.
	drained chan struct{}

	mu             sync.Mutex
	manifest       *Manifest
	graphs         map[string]*graphState
	queued         int   // flights admitted and not yet resolved
	resident       int64 // summed graph payload bytes
	residentMapped int64 // portion of resident backed by file mappings
	draining       bool
	wg             sync.WaitGroup // live dispatcher goroutines

	stats stats
}

// graphState is one resident graph plus its pool, cache, breaker and
// scheduler state. pending/flights/dispatching/lastUsed are guarded by
// Service.mu.
type graphState struct {
	name     string
	g        *graph.Graph
	path     string // source file; "" for graphs added in-process
	pool     *EnginePool
	cache    *lruCache
	breaker  *breaker
	resident int64
	mapped   bool // resident bytes alias a read-only file mapping

	// Tuning state (see tuning.go). profile is the graph's serving
	// profile (nil = untuned, pure service defaults); opts is the
	// service options with the profile applied — the pool and the
	// batched sweeps both run on it, so single-source and multi-source
	// paths agree on every knob. batchWidth clamps dispatch rounds to
	// the tuned MS-BFS lane count. qEdges/qNanos accumulate traversed
	// edges and busy nanos across completed traversals; their quotient
	// is the measured MTEPS /stats reports next to the prediction.
	profile    *tune.Profile
	opts       bfs.Options
	batchWidth int
	qEdges     atomic.Int64
	qNanos     atomic.Int64

	// Distance-oracle tier (see index.go). idx is the serving pointer —
	// the query fast path reads it lock-free; hit/fallback counters are
	// atomics for the same reason. The remaining idx* fields are guarded
	// by Service.mu.
	idx          atomic.Pointer[index.Index]
	idxHits      atomic.Int64
	idxFallbacks atomic.Int64
	idxState     string // "" (none), IndexBuilding, IndexReady, IndexFailed
	idxErr       string
	idxSpec      *IndexSpec
	idxCancel    context.CancelFunc
	idxResident  int64
	idxMapped    bool // idxResident aliases a read-only file mapping

	// Integrity-scrub state (guarded by Service.mu): quarantined means
	// the scrubber found a checksum mismatch and forced the breaker open;
	// scrubErr is the mismatch detail for /readyz.
	scrubQuarantined bool
	scrubErr         string

	lastUsed    time.Time
	flights     map[uint32]*flight // in-flight + queued, by source
	pending     []*flight          // queued, dispatch order
	dispatching bool
	lingered    bool
}

// flight is one traversal that one or more queries wait on. All fields
// below done are guarded by Service.mu until resolved.
type flight struct {
	source   uint32
	enqueued time.Time
	deadline time.Time // max over attached waiters; zero = none
	done     chan struct{}

	waiters  int  // attached callers still waiting
	started  bool // snapshot taken by the dispatcher; past shedding
	resolved bool // outcome published; resolve is idempotent
	probe    bool // this flight is its breaker's half-open probe

	tr  *Traversal
	err error
}

// New builds an empty service; add graphs with AddGraph or LoadGraph.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	opts := bfs.Default(1)
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		opts:       opts,
		baseCtx:    ctx,
		baseCancel: cancel,
		drained:    make(chan struct{}),
		graphs:     make(map[string]*graphState),
	}
	if cfg.StateDir != "" {
		// Not ready (and durable loads rejected) until Recover replays
		// the journal; see lifecycle.go.
		s.recovering.Store(true)
	}
	if cfg.Injector != nil {
		s.inj = cfg.Injector
		prev := s.opts.StepHook
		s.opts.StepHook = func(step int) {
			if prev != nil {
				prev(step)
			}
			s.chaosStepHook(step)
		}
	}
	if cfg.ScrubInterval > 0 {
		s.wg.Add(1)
		go s.scrubLoop()
	}
	return s
}

// AddGraph makes g queryable under name. The graph must not be mutated
// afterwards; it is shared by every engine and sweep. Adding a name
// that already exists fails — use LoadGraph for atomic replacement.
func (s *Service) AddGraph(name string, g *graph.Graph) error {
	if name == "" {
		return fmt.Errorf("%w: empty graph name", ErrBadRequest)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("serve: graph %q: %w", name, err)
	}
	prof := s.maybeCalibrate(name, g, nil) // before the lock: pure CPU work
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerGraphLocked(name, g, false, "", nil, prof)
}

// registerGraphLocked installs g under name, enforcing the resident-
// bytes budget (evicting idle graphs LRU-first). With replace it
// atomically swaps an existing entry: queries admitted against the old
// state complete on the old graph; new queries see the new one. A
// non-nil spec makes the mutation durable: the journal record is
// written and fsync'd BEFORE the serving table changes, so a crash at
// any point either recovers the old table or the new one, never an
// acknowledged-then-forgotten load. A non-nil prof is the graph's
// tuning profile: the engine pool is built with it applied, and the
// dispatcher clamps batch rounds to its lane width.
func (s *Service) registerGraphLocked(name string, g *graph.Graph, replace bool, path string, spec *GraphSpec, prof *tune.Profile) error {
	if s.draining {
		return ErrDraining
	}
	resident := graphResidentBytes(g)
	old := s.graphs[name]
	if old != nil && !replace {
		return fmt.Errorf("serve: graph %q already loaded", name)
	}
	var oldResident int64
	if old != nil {
		oldResident = old.resident
	}
	if budget := s.cfg.MaxResidentBytes; budget > 0 {
		for s.resident-oldResident+resident > budget {
			if !s.evictOneLocked(name) {
				return fmt.Errorf("%w: graph %q needs %d bytes but %d of %d budget are resident and nothing is idle",
					ErrResidentBudget, name, resident, s.resident, budget)
			}
		}
	}
	if spec != nil && s.manifest != nil {
		if err := s.manifest.AppendLoad(*spec); err != nil {
			return err // evictions above were journaled; the table is untouched
		}
	}
	if old != nil {
		s.retireLocked(old)
	}
	mapped := g.MappedBytes() > 0
	s.resident += resident
	if mapped {
		s.residentMapped += resident
	}
	opts := prof.Apply(s.opts) // nil profile is the identity
	batchWidth := s.cfg.MaxBatch
	if prof != nil && prof.BatchWidth > 0 && prof.BatchWidth < batchWidth {
		batchWidth = prof.BatchWidth
	}
	s.graphs[name] = &graphState{
		name:       name,
		g:          g,
		path:       path,
		pool:       NewEnginePool(g, opts, s.cfg.PoolSize),
		cache:      newLRUCache(s.cfg.CacheEntries),
		breaker:    newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown),
		resident:   resident,
		mapped:     mapped,
		profile:    prof,
		opts:       opts,
		batchWidth: batchWidth,
		lastUsed:   time.Now(),
		flights:    make(map[uint32]*flight),
	}
	return nil
}

// retireLocked releases what the service holds on behalf of a graph
// leaving the serving table (unload, eviction or replacement): its
// resident-bytes accounting and the process-wide cached transpose that
// bfs.InAdjacency pins per graph identity. In-flight queries keep the
// detached *graphState alive until their flights resolve; a mapped
// graph's file mapping is likewise finalizer-released only once nothing
// references it.
func (s *Service) retireLocked(gs *graphState) {
	s.resident -= gs.resident
	if gs.mapped {
		s.residentMapped -= gs.resident
	}
	s.resident -= gs.idxResident
	if gs.idxMapped {
		s.residentMapped -= gs.idxResident
	}
	gs.idxResident, gs.idxMapped = 0, false
	if gs.idxCancel != nil {
		gs.idxCancel() // abort an in-flight index build for this snapshot
	}
	bfs.ReleaseInAdjacency(gs.g)
}

// evictOneLocked drops the least-recently-used idle graph (no queued or
// running flights, not the one named exclude) to free resident bytes.
// In durable mode the eviction is journaled first; an eviction that
// cannot be made durable does not happen (the caller's load then fails
// on budget rather than silently diverging from the journal).
func (s *Service) evictOneLocked(exclude string) bool {
	var victim *graphState
	for _, gs := range s.graphs {
		if gs.name == exclude || len(gs.flights) > 0 || gs.dispatching {
			continue
		}
		if victim == nil || gs.lastUsed.Before(victim.lastUsed) {
			victim = gs
		}
	}
	if victim == nil {
		return false
	}
	if s.manifest != nil && s.manifest.Contains(victim.name) {
		if err := s.manifest.AppendUnload(victim.name); err != nil {
			return false
		}
	}
	delete(s.graphs, victim.name)
	s.retireLocked(victim)
	s.stats.graphEvictions.Add(1)
	return true
}

// GraphInfo describes one resident graph.
type GraphInfo struct {
	Name          string `json:"name"`
	Vertices      int    `json:"vertices"`
	Edges         int64  `json:"edges"`
	ResidentBytes int64  `json:"resident_bytes"`
	// Mapped reports that ResidentBytes alias a read-only file mapping
	// (page cache) rather than heap.
	Mapped  bool   `json:"mapped,omitempty"`
	Breaker string `json:"breaker"`
	// Index is the graph's distance-oracle state: none, building, ready
	// or failed (see IndexStatus for detail).
	Index string `json:"index,omitempty"`
}

// Graphs lists the resident graphs.
func (s *Service) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, gs := range s.graphs {
		state, _ := gs.breaker.snapshot()
		out = append(out, GraphInfo{
			Name:          gs.name,
			Vertices:      gs.g.NumVertices(),
			Edges:         gs.g.NumEdges(),
			ResidentBytes: gs.resident,
			Mapped:        gs.mapped,
			Breaker:       state,
			Index:         indexStateName(gs.idxState),
		})
	}
	return out
}

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth reports admitted-but-unresolved traversals (for tests and
// /stats).
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// ResidentBytes reports the summed resident graph payload.
func (s *Service) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resident
}

// BeginDrain stops admitting queries; already-admitted flights complete.
// In-flight index builds are cancelled — a build's result could not be
// mounted into a draining table anyway.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drained) // wake background loops so Shutdown's wait returns
	}
	for _, gs := range s.graphs {
		if gs.idxCancel != nil {
			gs.idxCancel()
		}
	}
	s.mu.Unlock()
}

// Shutdown drains gracefully: no new queries, wait for in-flight
// traversals. If ctx expires first, outstanding traversals are hard-
// cancelled (their waiters get context errors) and Shutdown returns
// ctx.Err() once they unwind.
func (s *Service) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Every journal append was fsync'd at mutation time; Close only
	// releases the handle.
	s.mu.Lock()
	if s.manifest != nil {
		_ = s.manifest.Close()
	}
	s.mu.Unlock()
	return err
}

// Query answers one request, blocking until the result, the caller's
// ctx deadline, or a rejection. Safe for arbitrary concurrency.
func (s *Service) Query(ctx context.Context, req Request) (*Response, error) {
	s.stats.requests.Add(1)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return nil, ErrDraining
	}
	gs := s.graphs[req.Graph]
	var quarantined bool
	if gs != nil {
		gs.lastUsed = time.Now()
		quarantined = gs.scrubQuarantined
	}
	s.mu.Unlock()
	if gs == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, req.Graph)
	}
	if err := req.validate(gs.g); err != nil {
		return nil, err
	}

	// A quarantined graph answers nothing, not even from the oracle or
	// the cache: both were built from resident bytes that may have been
	// rotten for up to one scrub interval before detection. Falling
	// through to the flight path yields the breaker's typed rejection.
	if !quarantined {
		// Distance-only queries try the landmark oracle first: a
		// certified answer costs two label merge-joins per target
		// instead of any traversal at all. Uncertified answers fall
		// through to the exact BFS path below (cache, then flight).
		if req.DistanceOnly {
			if resp := s.answerFromIndex(gs, req); resp != nil {
				return resp, nil
			}
		}

		if tr, ok := gs.cache.get(req.Source); ok {
			s.stats.cacheHits.Add(1)
			return buildResponse(gs, req, tr, true)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return nil, ErrDraining
	}
	f := gs.flights[req.Source]
	if f == nil {
		ok, probe, retry := gs.breaker.allow()
		if !ok {
			s.mu.Unlock()
			s.stats.breakerRejected.Add(1)
			s.stats.rejected.Add(1)
			return nil, &BreakerOpenError{Graph: gs.name, RetryAfter: retry}
		}
		if s.queued >= s.cfg.MaxQueue && !s.shedOldestLocked() {
			gs.breaker.onNeutral(probe) // the probe slot was never used
			s.mu.Unlock()
			s.stats.rejected.Add(1)
			return nil, ErrOverloaded
		}
		f = &flight{
			source:   req.Source,
			enqueued: time.Now(),
			done:     make(chan struct{}),
			waiters:  1,
			probe:    probe,
		}
		f.deadline, _ = ctx.Deadline()
		gs.flights[req.Source] = f
		gs.pending = append(gs.pending, f)
		s.queued++
		if !gs.dispatching {
			gs.dispatching = true
			s.wg.Add(1)
			go s.dispatch(gs)
		}
	} else {
		s.stats.coalesced.Add(1)
		f.waiters++
		// Extend the flight's deadline to cover this waiter too; the
		// dispatcher reads it under s.mu when the flight starts, so the
		// extension holds for flights still queued.
		if dl, ok := ctx.Deadline(); !f.deadline.IsZero() && (!ok || dl.After(f.deadline)) {
			if ok {
				f.deadline = dl
			} else {
				f.deadline = time.Time{}
			}
		}
	}
	s.mu.Unlock()

	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		return buildResponse(gs, req, f.tr, false)
	case <-ctx.Done():
		// This caller gives up. If it was the flight's last waiter and
		// the flight is still queued, the admission ticket is released
		// immediately (no traversal runs for an audience of zero);
		// otherwise the flight keeps running for the other waiters.
		s.abandon(gs, f)
		s.stats.expired.Add(1)
		return nil, ctx.Err()
	}
}

// abandon detaches one waiter whose context died. A queued flight whose
// last waiter leaves is resolved on the spot, releasing its ticket and
// its slot in the dispatch queue.
func (s *Service) abandon(gs *graphState, f *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.resolved {
		return
	}
	f.waiters--
	if f.waiters > 0 || f.started {
		return
	}
	for i, p := range gs.pending {
		if p == f {
			gs.pending = append(gs.pending[:i], gs.pending[i+1:]...)
			break
		}
	}
	s.stats.abandoned.Add(1)
	s.resolveLocked(gs, f, nil, context.Canceled)
}

// shedOldestLocked implements the CoDel-style drop decision: find the
// oldest queued (not yet dispatched) flight service-wide and, if its
// sojourn exceeds ShedTarget, resolve it with ErrShed to make room.
// Returns whether a slot was freed.
func (s *Service) shedOldestLocked() bool {
	if s.cfg.ShedTarget < 0 {
		return false
	}
	var (
		oldest   *flight
		oldestGS *graphState
	)
	for _, gs := range s.graphs {
		if len(gs.pending) == 0 {
			continue
		}
		if f := gs.pending[0]; oldest == nil || f.enqueued.Before(oldest.enqueued) {
			oldest, oldestGS = f, gs
		}
	}
	if oldest == nil || time.Since(oldest.enqueued) <= s.cfg.ShedTarget {
		return false
	}
	oldestGS.pending = oldestGS.pending[1:]
	s.stats.shed.Add(1)
	s.resolveLocked(oldestGS, oldest, nil, ErrShed)
	return true
}

// dispatch drains gs.pending in rounds until it is empty, then exits.
// Exactly one dispatcher runs per graph at a time.
func (s *Service) dispatch(gs *graphState) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if len(gs.pending) == 0 {
			gs.dispatching = false
			s.mu.Unlock()
			return
		}
		// Optionally linger once per round to let a batch accumulate.
		if lin := s.cfg.BatchLinger; lin > 0 && !gs.lingered && len(gs.pending) < s.cfg.MaxBatch {
			gs.lingered = true
			s.mu.Unlock()
			select {
			case <-time.After(lin):
			case <-s.baseCtx.Done():
			}
			continue
		}
		gs.lingered = false
		width := s.cfg.MaxBatch
		if gs.batchWidth > 0 && gs.batchWidth < width {
			width = gs.batchWidth // tuned MS-BFS lane cap for this graph
		}
		k := min(len(gs.pending), width)
		round := append([]*flight(nil), gs.pending[:k]...)
		gs.pending = append(gs.pending[:0:0], gs.pending[k:]...)
		// Snapshot each flight's deadline while holding the lock (late
		// coalescing waiters may still extend queued flights), and merge
		// them for the batched path: the sweep runs until the last
		// waiter's deadline; earlier waiters stop waiting on their own.
		deadlines := make([]time.Time, len(round))
		deadline, infinite := time.Time{}, false
		for i, f := range round {
			f.started = true
			deadlines[i] = f.deadline
			if f.deadline.IsZero() {
				infinite = true
			} else if f.deadline.After(deadline) {
				deadline = f.deadline
			}
		}
		s.mu.Unlock()

		var rctx context.Context
		var cancel context.CancelFunc
		if !infinite && !deadline.IsZero() {
			rctx, cancel = context.WithDeadline(s.baseCtx, deadline)
		} else {
			rctx, cancel = context.WithCancel(s.baseCtx)
		}
		// Watchdog: a round that overruns a hard multiple of its budget
		// is cancelled AND force-resolved, so waiters never hang on a
		// wedged traversal (resolve is idempotent: if the run finishes
		// later anyway, its late resolve is a no-op).
		var wd *time.Timer
		if mult := s.cfg.WatchdogMult; mult > 0 {
			budget := s.cfg.DefaultTimeout
			if !infinite && !deadline.IsZero() {
				if d := time.Until(deadline); d > 0 {
					budget = d
				}
			}
			wd = time.AfterFunc(time.Duration(mult)*budget, func() {
				cancel()
				s.stats.watchdogFired.Add(1)
				err := fmt.Errorf("%w (budget %v × %d)", ErrWatchdog, budget, mult)
				for _, f := range round {
					s.resolve(gs, f, nil, err)
				}
			})
		}
		if len(round) >= s.cfg.BatchThreshold && len(round) > 1 {
			s.runBatched(gs, rctx, round)
		} else {
			s.runSingles(gs, rctx, round, deadlines)
		}
		if wd != nil {
			wd.Stop()
		}
		cancel()
	}
}

// runBatched serves one round as a single bit-parallel sweep. When the
// service's engine options request hybrid traversal, the sweep is
// direction-optimizing too: it shares the per-graph cached transpose
// with the pooled engines (bfs.InAdjacency), so daemon-side batched
// queries get the same bottom-up win as single-source ones. A panic
// anywhere in the sweep (injected or real) fails the round with a
// typed engine fault instead of killing the daemon.
func (s *Service) runBatched(gs *graphState, ctx context.Context, round []*flight) {
	sources := make([]uint32, len(round))
	for i, f := range round {
		sources[i] = f.source
	}
	var res *msbfs.Result
	err := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = &par.PanicError{Worker: -1, Value: rec, Stack: debug.Stack()}
			}
		}()
		if err := s.chaosSweep(); err != nil {
			return fmt.Errorf("serve: sweep: %w", err)
		}
		// gs.opts — the service options with the graph's tuning profile
		// applied — so batched sweeps honor the per-graph hybrid choice.
		if gs.opts.Hybrid {
			var in *graph.Graph
			if !gs.opts.Symmetric {
				in = bfs.InAdjacency(gs.g)
			}
			res, err = msbfs.RunHybridContext(ctx, gs.g, in, sources, s.cfg.Workers)
		} else {
			res, err = msbfs.RunContext(ctx, gs.g, sources, s.cfg.Workers)
		}
		return err
	}()
	if err != nil {
		if poisoned(err) {
			s.stats.panicsRecovered.Add(1)
			err = &EngineFaultError{Graph: gs.name, Err: err}
		}
		for _, f := range round {
			s.resolve(gs, f, nil, err)
		}
		return
	}
	s.stats.sweeps.Add(1)
	s.stats.batchedQueries.Add(int64(len(round)))
	// Measured-throughput accounting: LaneEdges is the aggregate-TEPS
	// numerator (what independent per-source runs would have traversed),
	// so the quotient stays comparable with the model's prediction.
	gs.qEdges.Add(res.LaneEdges)
	gs.qNanos.Add(int64(res.Elapsed))
	perLane := res.Elapsed / time.Duration(len(round))
	for k, f := range round {
		s.resolve(gs, f, newLaneTraversal(res, k, perLane), nil)
	}
}

// runSingles serves a small round on pooled engines, one goroutine per
// flight; the pool bounds actual parallelism. deadlines[i] is flight
// i's deadline as snapshotted under the service lock at dispatch. An
// engine whose run dies mid-traversal is quarantined: discarded from
// the pool (a later acquire builds a fresh one) while its waiters get
// a typed engine fault.
func (s *Service) runSingles(gs *graphState, rctx context.Context, round []*flight, deadlines []time.Time) {
	var wg sync.WaitGroup
	for i, f := range round {
		wg.Add(1)
		go func(f *flight, deadline time.Time) {
			defer wg.Done()
			fctx := rctx
			if !deadline.IsZero() {
				var cancel context.CancelFunc
				fctx, cancel = context.WithDeadline(rctx, deadline)
				defer cancel()
			}
			if err := s.chaosAcquire(); err != nil {
				s.resolve(gs, f, nil, fmt.Errorf("serve: acquiring engine: %w", err))
				return
			}
			e, err := gs.pool.Acquire(fctx)
			if err != nil {
				s.resolve(gs, f, nil, err)
				return
			}
			r, err := runGuarded(e, fctx, f.source)
			var tr *Traversal
			if err == nil {
				tr = newEngineTraversal(r)
				gs.qEdges.Add(r.EdgesTraversed)
				gs.qNanos.Add(int64(r.Elapsed))
			}
			if poisoned(err) {
				gs.pool.Discard(e)
				s.stats.panicsRecovered.Add(1)
				s.stats.enginesRetired.Add(1)
				err = &EngineFaultError{Graph: gs.name, Err: err}
			} else {
				gs.pool.Release(e)
			}
			s.stats.engineRuns.Add(1)
			s.resolve(gs, f, tr, err)
		}(f, deadlines[i])
	}
	wg.Wait()
}

// runGuarded runs one traversal, converting any panic that unwinds into
// this goroutine into a *par.PanicError. (Panics inside the engine's
// own workers — including injected StepHook crashes — are already
// recovered by par.Run and arrive as wrapped errors.)
func runGuarded(e *bfs.Engine, ctx context.Context, source uint32) (r *bfs.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &par.PanicError{Worker: -1, Value: rec, Stack: debug.Stack()}
		}
	}()
	return e.RunContext(ctx, source)
}

// poisoned reports whether err carries a recovered panic — the signal
// that the engine's internal state died mid-run and it must be
// quarantined rather than returned to its pool.
func poisoned(err error) bool {
	var pe *par.PanicError
	return errors.As(err, &pe)
}

// resolve publishes a flight's outcome: caches successful traversals,
// retires the flight from the singleflight table and admission queue,
// and feeds the graph's circuit breaker. It is idempotent — the first
// caller (dispatcher, watchdog, shedder or abandoner) wins.
func (s *Service) resolve(gs *graphState, f *flight, tr *Traversal, err error) {
	if err == nil && tr != nil {
		gs.cache.put(f.source, tr)
	}
	s.mu.Lock()
	s.resolveLocked(gs, f, tr, err)
	s.mu.Unlock()
}

// resolveLocked is resolve under Service.mu; see resolve.
func (s *Service) resolveLocked(gs *graphState, f *flight, tr *Traversal, err error) {
	if f.resolved {
		return
	}
	f.resolved = true
	if cur := gs.flights[f.source]; cur == f {
		delete(gs.flights, f.source)
	}
	s.queued--
	switch classify(err) {
	case outcomeSuccess:
		gs.breaker.onSuccess(f.probe)
	case outcomeFailure:
		gs.breaker.onFailure(f.probe)
	default:
		gs.breaker.onNeutral(f.probe)
	}
	f.tr, f.err = tr, err
	close(f.done)
}

// Flight outcomes as the circuit breaker sees them.
const (
	outcomeSuccess = iota
	outcomeFailure
	outcomeNeutral
)

// classify sorts a flight error into breaker outcomes: engine-side
// failures count against the graph; caller-budget expiries, shedding
// and drains say nothing about engine health.
func classify(err error) int {
	switch {
	case err == nil:
		return outcomeSuccess
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrShed),
		errors.Is(err, ErrDraining):
		return outcomeNeutral
	default:
		return outcomeFailure
	}
}
