package serve

import (
	"fmt"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/internal/core"
	"fastbfs/internal/msbfs"
	"fastbfs/internal/par"
)

// Request is one traversal query. Graph and Source select the
// traversal; the remaining fields select what of its result to return.
type Request struct {
	Graph  string `json:"graph"`
	Source uint32 `json:"source"`
	// Targets asks for the depth/parent of specific vertices.
	Targets []uint32 `json:"targets,omitempty"`
	// PathTo asks for one shortest path from Source to this vertex.
	PathTo *uint32 `json:"path_to,omitempty"`
	// AllDepths asks for the full depth array (8 bytes/vertex on the
	// wire as JSON; meant for small graphs and testing).
	AllDepths bool `json:"all_depths,omitempty"`
	// DistanceOnly asks only for target distances (no parents, paths or
	// depth arrays), which lets the service answer from the graph's
	// distance-oracle index — when one is mounted and certifies every
	// target — without running any traversal. Requires Targets; the
	// response says how it was answered via "index" and "exact".
	DistanceOnly bool `json:"distance_only,omitempty"`
	// Approx (with DistanceOnly) accepts the oracle's upper bounds for
	// pairs it cannot certify instead of falling back to an exact BFS;
	// such responses carry "exact":false.
	Approx bool `json:"approx,omitempty"`
	// TimeoutMS overrides the service's default per-query deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r Request) validate(g *graph.Graph) error {
	n := g.NumVertices()
	if int(r.Source) >= n {
		return fmt.Errorf("%w: source %d out of range (graph has %d vertices)", ErrBadRequest, r.Source, n)
	}
	for _, t := range r.Targets {
		if int(t) >= n {
			return fmt.Errorf("%w: target %d out of range", ErrBadRequest, t)
		}
	}
	if r.PathTo != nil && int(*r.PathTo) >= n {
		return fmt.Errorf("%w: path_to %d out of range", ErrBadRequest, *r.PathTo)
	}
	if r.DistanceOnly {
		if len(r.Targets) == 0 {
			return fmt.Errorf("%w: distance_only requires targets", ErrBadRequest)
		}
		if r.PathTo != nil || r.AllDepths {
			return fmt.Errorf("%w: distance_only excludes path_to and all_depths", ErrBadRequest)
		}
	}
	if r.Approx && !r.DistanceOnly {
		return fmt.Errorf("%w: approx requires distance_only", ErrBadRequest)
	}
	return nil
}

// TargetResult is the per-target slice of a Response.
type TargetResult struct {
	Vertex  uint32 `json:"vertex"`
	Reached bool   `json:"reached"`
	// Depth is the BFS depth, -1 if unreached.
	Depth int32 `json:"depth"`
	// Parent is the BFS-tree parent (== Vertex for the source), -1 if
	// unreached.
	Parent int64 `json:"parent"`
}

// Response is the answer to one Request.
type Response struct {
	Graph   string `json:"graph"`
	Source  uint32 `json:"source"`
	Steps   int    `json:"steps"`
	Visited int64  `json:"visited"`
	// Batched reports that the traversal ran inside a multi-source
	// sweep; Cached that it was served from the LRU without running.
	Batched bool `json:"batched"`
	Cached  bool `json:"cached"`
	// Index reports that the distance-oracle label join answered this
	// query with no traversal at all; Exact (set on distance-only
	// responses, from either path) certifies the reported distances —
	// false only for approx requests served from uncertified bounds.
	Index     bool           `json:"index,omitempty"`
	Exact     *bool          `json:"exact,omitempty"`
	ElapsedUS int64          `json:"elapsed_us"`
	Targets   []TargetResult `json:"targets,omitempty"`
	// Path is a shortest path Source..PathTo inclusive; PathFound
	// distinguishes "unreached" from "not asked".
	Path      []uint32 `json:"path,omitempty"`
	PathFound *bool    `json:"path_found,omitempty"`
	// Depths is the full depth array (-1 = unreached) when AllDepths.
	Depths []int32 `json:"depths,omitempty"`
}

// Traversal is an immutable completed-traversal snapshot: unlike a live
// bfs.Result it does not alias engine storage, so it can be cached and
// shared across waiters indefinitely.
type Traversal struct {
	Source  uint32
	DP      []uint64 // packed parent/depth per vertex, core.INF = unvisited
	Steps   int
	Visited int64
	Batched bool
	Elapsed time.Duration
}

// Depth returns the BFS depth of v, or -1 if unreached.
func (t *Traversal) Depth(v uint32) int32 {
	if t.DP[v] == core.INF {
		return -1
	}
	return int32(uint32(t.DP[v]))
}

// Parent returns the BFS parent of v, or -1 if unreached.
func (t *Traversal) Parent(v uint32) int64 {
	if t.DP[v] == core.INF {
		return -1
	}
	return int64(t.DP[v] >> 32)
}

// PathTo returns the tree path Source..v, or nil if v is unreached.
func (t *Traversal) PathTo(v uint32) []uint32 {
	d := t.Depth(v)
	if d < 0 {
		return nil
	}
	path := make([]uint32, d+1)
	for i := int(d); i >= 0; i-- {
		path[i] = v
		v = uint32(t.DP[v] >> 32)
	}
	return path
}

// newEngineTraversal snapshots a live engine result (copying DP, which
// the engine will overwrite on its next run).
func newEngineTraversal(r *bfs.Result) *Traversal {
	return &Traversal{
		Source:  r.Source,
		DP:      append([]uint64(nil), r.DP...),
		Steps:   r.Steps,
		Visited: r.Visited,
		Elapsed: r.Elapsed,
	}
}

// newLaneTraversal adopts one lane of a multi-source sweep (lane arrays
// are allocated per sweep, so no copy is needed) and derives the lane's
// own Steps/Visited, which the shared sweep does not track.
func newLaneTraversal(res *msbfs.Result, lane int, elapsed time.Duration) *Traversal {
	dp := res.DP[lane]
	type acc struct {
		visited int64
		maxd    int32
		_       [6]uint64
	}
	workers := par.DefaultWorkers()
	parts := make([]acc, workers)
	if err := par.Run(workers, func(w int) {
		lo, hi := par.Range(len(dp), w, workers)
		var visited int64
		var maxd int32
		for _, x := range dp[lo:hi] {
			if x == core.INF {
				continue
			}
			visited++
			if d := int32(uint32(x)); d > maxd {
				maxd = d
			}
		}
		parts[w] = acc{visited: visited, maxd: maxd}
	}); err != nil {
		panic(err) // a counting loop cannot panic; surface anything else loudly
	}
	var visited int64
	var maxd int32
	for i := range parts {
		visited += parts[i].visited
		if parts[i].maxd > maxd {
			maxd = parts[i].maxd
		}
	}
	return &Traversal{
		Source:  res.Sources[lane],
		DP:      dp,
		Steps:   int(maxd) + 1, // engine counting: deepest level + empty-frontier detection
		Visited: visited,
		Batched: true,
		Elapsed: elapsed,
	}
}

// buildResponse derives the caller's view from a traversal snapshot.
func buildResponse(gs *graphState, req Request, tr *Traversal, cached bool) (*Response, error) {
	resp := &Response{
		Graph:     gs.name,
		Source:    tr.Source,
		Steps:     tr.Steps,
		Visited:   tr.Visited,
		Batched:   tr.Batched,
		Cached:    cached,
		ElapsedUS: tr.Elapsed.Microseconds(),
	}
	if len(req.Targets) > 0 {
		resp.Targets = make([]TargetResult, len(req.Targets))
		for i, v := range req.Targets {
			d := tr.Depth(v)
			parent := tr.Parent(v)
			if req.DistanceOnly {
				// Distances only: elide parents so the BFS-fallback
				// targets array is byte-identical to an index-path one.
				parent = -1
			}
			resp.Targets[i] = TargetResult{Vertex: v, Reached: d >= 0, Depth: d, Parent: parent}
		}
	}
	if req.DistanceOnly {
		exact := true // a real traversal is exact by construction
		resp.Exact = &exact
	}
	if req.PathTo != nil {
		path := tr.PathTo(*req.PathTo)
		found := path != nil
		resp.Path, resp.PathFound = path, &found
	}
	if req.AllDepths {
		resp.Depths = make([]int32, len(tr.DP))
		for v := range tr.DP {
			resp.Depths[v] = tr.Depth(uint32(v))
		}
	}
	return resp, nil
}
