package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded most-recently-used cache of completed
// traversals, keyed by source vertex. Engine options are fixed for the
// lifetime of a service, and graphs are immutable once added, so
// entries never go stale and the full cache key (graph, source,
// options) collapses to the source within one graph's cache. Capacity
// is counted in traversals; each entry holds one 8-byte word per graph
// vertex, so the per-graph cache budget is 8·V·cap bytes.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	items map[uint32]*list.Element
}

type cacheEntry struct {
	source uint32
	tr     *Traversal
}

// newLRUCache returns a cache of the given capacity; cap <= 0 disables
// caching (every get misses, every put is dropped).
func newLRUCache(capacity int) *lruCache {
	c := &lruCache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[uint32]*list.Element, capacity)
	}
	return c
}

func (c *lruCache) get(source uint32) (*Traversal, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[source]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).tr, true
}

func (c *lruCache) put(source uint32, tr *Traversal) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[source]; ok {
		el.Value.(*cacheEntry).tr = tr
		c.ll.MoveToFront(el)
		return
	}
	c.items[source] = c.ll.PushFront(&cacheEntry{source: source, tr: tr})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).source)
	}
}

// purge drops every entry. The scrubber calls this when it quarantines
// a graph: rot precedes its detection by up to one scrub interval, so
// traversals cached in that window may have read corrupted resident
// bytes.
func (c *lruCache) purge() {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

func (c *lruCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
