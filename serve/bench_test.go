package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/msbfs"
)

// benchRMAT caches the benchmark graph across benchmark functions.
var (
	benchOnce  sync.Once
	benchG     *graph.Graph
	benchSrcs  []uint32
	benchScale = 16
)

func benchGraph(b *testing.B) (*graph.Graph, []uint32) {
	b.Helper()
	benchOnce.Do(func() {
		g, err := gen.RMAT(gen.Graph500Params(benchScale, 16), 7)
		if err != nil {
			panic(err)
		}
		benchG = g
		benchSrcs = make([]uint32, msbfs.MaxLanes)
		for k := range benchSrcs {
			benchSrcs[k] = uint32((k*2654435761 + 13) % g.NumVertices())
		}
	})
	return benchG, benchSrcs
}

// BenchmarkBatch64Sweep is the batched path of the acceptance pair: 64
// sources answered by one bit-parallel sweep. Compare its
// "aggMTEPS" metric against BenchmarkBatch64Sequential's.
func BenchmarkBatch64Sweep(b *testing.B) {
	g, srcs := benchGraph(b)
	var agg float64
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := msbfs.Run(g, srcs, 0)
		if err != nil {
			b.Fatal(err)
		}
		agg += res.AggregateMTEPS()
		edges += res.LaneEdges
	}
	b.ReportMetric(agg/float64(b.N), "aggMTEPS")
	b.ReportMetric(float64(edges)/float64(b.N), "laneEdges/op")
}

// BenchmarkBatch64Sequential answers the same 64 sources one at a time
// on a single reused engine — the no-batching baseline.
func BenchmarkBatch64Sequential(b *testing.B) {
	g, srcs := benchGraph(b)
	e, err := bfs.NewEngine(g, bfs.Default(1))
	if err != nil {
		b.Fatal(err)
	}
	var agg float64
	for i := 0; i < b.N; i++ {
		var edges int64
		var secs float64
		for _, s := range srcs {
			res, err := e.Run(s)
			if err != nil {
				b.Fatal(err)
			}
			edges += res.EdgesTraversed
			secs += res.Elapsed.Seconds()
		}
		agg += float64(edges) / secs / 1e6
	}
	b.ReportMetric(agg/float64(b.N), "aggMTEPS")
}

// BenchmarkServiceThroughput pushes concurrent clients through the full
// scheduler (cache disabled so every query traverses) and reports
// queries per second.
func BenchmarkServiceThroughput(b *testing.B) {
	g, _ := benchGraph(b)
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			s := New(Config{CacheEntries: -1, BatchThreshold: 4})
			if err := s.AddGraph("g", g); err != nil {
				b.Fatal(err)
			}
			defer func() { _ = s.Shutdown(context.Background()) }()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := (b.N + clients - 1) / clients
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						src := uint32(((c*per+i)*40503 + 1) % g.NumVertices())
						if _, err := s.Query(context.Background(), Request{Graph: "g", Source: src}); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}
