package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// saveGraph writes g to a temp file and returns its path.
func saveGraph(t *testing.T, g *graph.Graph, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadReplaceUnloadGraph(t *testing.T) {
	g1, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Grid2D(20, 20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	defer func() { _ = s.Shutdown(context.Background()) }()

	info, err := s.LoadGraph("grid", saveGraph(t, g1, "g1.csr"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 100 || info.ResidentBytes != graphResidentBytes(g1) {
		t.Fatalf("load info %+v", info)
	}
	resp, err := s.Query(context.Background(), Request{Graph: "grid", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Depths) != 100 {
		t.Fatalf("queried %d depths, want 100", len(resp.Depths))
	}

	// Atomic replace: same name, bigger graph; queries see the new one.
	if _, err := s.LoadGraph("grid", saveGraph(t, g2, "g2.csr")); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Query(context.Background(), Request{Graph: "grid", Source: 0, AllDepths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Depths) != 400 {
		t.Fatalf("after replace queried %d depths, want 400", len(resp.Depths))
	}
	if got := s.ResidentBytes(); got != graphResidentBytes(g2) {
		t.Fatalf("resident %d after replace, want %d (old graph still counted?)", got, graphResidentBytes(g2))
	}

	if err := s.UnloadGraph("grid"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), Request{Graph: "grid", Source: 0}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("query after unload: err = %v, want ErrUnknownGraph", err)
	}
	if err := s.UnloadGraph("grid"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("double unload: err = %v, want ErrUnknownGraph", err)
	}
	if got := s.ResidentBytes(); got != 0 {
		t.Fatalf("resident %d after unload, want 0", got)
	}
	st := s.Stats()
	if st.GraphLoads != 2 || st.GraphUnloads != 1 {
		t.Errorf("lifecycle counters: %+v", st)
	}
}

// TestLoadRejectsCorruptFile: a bit-flipped graph file fails the CRC at
// load with the typed error chain, and the serving table is untouched.
func TestLoadRejectsCorruptFile(t *testing.T) {
	g, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := saveGraph(t, g, "g.csr")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[30] ^= 0x04 // inside the offsets array
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	defer func() { _ = s.Shutdown(context.Background()) }()
	_, err = s.LoadGraph("bad", path)
	if !errors.Is(err, ErrLoadFailed) {
		t.Fatalf("err = %v, want ErrLoadFailed", err)
	}
	if !errors.Is(err, graph.ErrChecksum) {
		t.Fatalf("err = %v, want graph.ErrChecksum in the chain", err)
	}
	if n := len(s.Graphs()); n != 0 {
		t.Fatalf("%d graphs resident after failed load", n)
	}
	if rs := s.Ready(); !rs.Ready {
		t.Fatalf("failed load left service unready: %+v", rs)
	}
	if st := s.Stats(); st.GraphLoadsFailed != 1 {
		t.Errorf("failed load not counted: %+v", st)
	}

	// A nonexistent path is the same typed failure, different cause.
	if _, err := s.LoadGraph("gone", filepath.Join(t.TempDir(), "missing.csr")); !errors.Is(err, ErrLoadFailed) {
		t.Fatalf("missing file: err = %v, want ErrLoadFailed", err)
	}
}

// TestResidentBudgetEviction: loads beyond MaxResidentBytes evict idle
// graphs LRU-first; with nothing evictable the load fails typed.
func TestResidentBudgetEviction(t *testing.T) {
	small, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	unit := graphResidentBytes(small)
	s := New(Config{MaxResidentBytes: 2*unit + unit/2})
	defer func() { _ = s.Shutdown(context.Background()) }()

	if err := s.AddGraph("a", small); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph("b", small); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" is the LRU victim.
	if _, err := s.Query(context.Background(), Request{Graph: "a", Source: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph("c", small); err != nil {
		t.Fatalf("third load should evict, got %v", err)
	}
	names := map[string]bool{}
	for _, gi := range s.Graphs() {
		names[gi.Name] = true
	}
	if !names["a"] || names["b"] || !names["c"] {
		t.Fatalf("resident set %v, want a and c (b evicted as LRU)", names)
	}
	if st := s.Stats(); st.GraphEvictions != 1 {
		t.Errorf("eviction not counted: %+v", st)
	}

	// A graph that cannot fit even after evicting everything idle fails
	// with the typed budget error.
	big, err := gen.Grid2D(40, 40, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph("big", big); !errors.Is(err, ErrResidentBudget) {
		t.Fatalf("oversized load: err = %v, want ErrResidentBudget", err)
	}
}

// TestReadyzVsHealthz: /healthz is liveness (up and not draining);
// /readyz additionally demands closed breakers and no load in progress,
// and carries the per-graph breaker states.
func TestReadyzVsHealthz(t *testing.T) {
	g := testGraph(t)
	s := newTestService(t, g, Config{})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	code, body := get("/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, body)
	}
	var rs ReadyState
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatal(err)
	}
	if !rs.Ready || len(rs.Graphs) != 1 || rs.Graphs[0].Breaker != BreakerClosed {
		t.Fatalf("ready state %+v", rs)
	}

	s.BeginDrain()
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d", code)
	}
}

// TestHTTPLoadUnload drives the lifecycle endpoints end to end,
// including the typed rejection of a corrupt file.
func TestHTTPLoadUnload(t *testing.T) {
	g, err := gen.Grid2D(10, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := saveGraph(t, g, "g.csr")
	s := New(Config{})
	defer func() { _ = s.Shutdown(context.Background()) }()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}

	code, body := post("/graphs/load", `{"name":"grid","path":"`+path+`"}`)
	if code != http.StatusOK {
		t.Fatalf("load = %d: %s", code, body)
	}
	code, body = post("/query", `{"graph":"grid","source":0,"targets":[99]}`)
	if code != http.StatusOK {
		t.Fatalf("query = %d: %s", code, body)
	}
	if !strings.Contains(body, `"depth":18`) {
		t.Fatalf("query body %s lacks corner depth 18", body)
	}

	// Corrupt file → 422 with the checksum cause in the message.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[40] ^= 0x10
	badPath := filepath.Join(t.TempDir(), "bad.csr")
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, body = post("/graphs/load", `{"name":"bad","path":"`+badPath+`"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt load = %d: %s", code, body)
	}
	if !strings.Contains(body, "checksum") {
		t.Fatalf("corrupt load body %q does not name the checksum", body)
	}

	if code, body = post("/graphs/unload", `{"name":"grid"}`); code != http.StatusOK {
		t.Fatalf("unload = %d: %s", code, body)
	}
	if code, _ = post("/query", `{"graph":"grid","source":0}`); code != http.StatusNotFound {
		t.Fatalf("query after unload = %d", code)
	}
	if code, _ = post("/graphs/unload", `{"name":"grid"}`); code != http.StatusNotFound {
		t.Fatalf("double unload = %d", code)
	}
}

// TestQueryDuringReplace hammers one graph with queries while the same
// name is repeatedly re-loaded: every response must be internally
// consistent (either graph generation is fine — both are grids with the
// same corner depth), and nothing may crash or deadlock.
func TestQueryDuringReplace(t *testing.T) {
	g, err := gen.Grid2D(15, 15, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := saveGraph(t, g, "g.csr")
	s := New(Config{CacheEntries: -1})
	defer func() { _ = s.Shutdown(context.Background()) }()
	if _, err := s.LoadGraph("grid", path); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	loaderDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				loaderDone <- nil
				return
			default:
			}
			if _, err := s.LoadGraph("grid", path); err != nil {
				loaderDone <- err
				return
			}
		}
	}()
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := s.Query(context.Background(), Request{Graph: "grid", Source: 0, AllDepths: true})
		if err != nil {
			t.Fatalf("query during replace: %v", err)
		}
		if len(resp.Depths) != 225 || resp.Depths[224] != 28 {
			t.Fatalf("inconsistent response during replace: %d depths, corner %d",
				len(resp.Depths), resp.Depths[224])
		}
	}
	close(stop)
	if err := <-loaderDone; err != nil {
		t.Fatalf("loader: %v", err)
	}
}
