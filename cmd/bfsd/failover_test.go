//go:build unix

package main

// Process-level HA harness: replicated shard groups surviving SIGKILL
// with exact results, a journaled standby coordinator taking over an
// in-flight epoch, fencing of a deposed-but-alive coordinator, boot
// order independence of registration, and the shard /readyz probe.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"
)

// startCoordinatorAt launches a bfsd coordinator pinned to addr (the
// boot-order test needs shards dialing the address before the process
// exists).
func startCoordinatorAt(t *testing.T, addr string, args ...string) *daemon {
	t.Helper()
	d := &daemon{addr: addr, logs: &bytes.Buffer{}}
	d.cmd = exec.Command(bfsdBin, append([]string{"-addr", addr}, args...)...)
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_, _ = d.cmd.Process.Wait()
		}
	})
	return d
}

// stopAndLogs SIGKILLs a daemon, reaps it via cmd.Wait — which also
// joins the goroutines copying its output into d.logs — and returns
// the complete log text, race-free.
func stopAndLogs(d *daemon) string {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	return d.logs.String()
}

// startReplicaCluster launches groups x replicas shard processes
// (group-major) plus a coordinator with -replicas, and waits for
// assembly.
func startReplicaCluster(t *testing.T, groups, replicas, scale int, shardExtra []string, coordArgs ...string) (*daemon, []*daemon) {
	t.Helper()
	var shards []*daemon
	urls := ""
	for g := 0; g < groups; g++ {
		for r := 0; r < replicas; r++ {
			extra := append([]string{"-replica-id", strconv.Itoa(r)}, shardExtra...)
			s := startShard(t, freePort(t), g, groups, scale, "", extra...)
			if len(shards) > 0 {
				urls += ","
			}
			urls += "http://" + s.addr
			shards = append(shards, s)
		}
	}
	for _, s := range shards {
		s.waitReady(t)
	}
	co := startDaemon(t, append([]string{
		"-coordinate", urls, "-replicas", strconv.Itoa(replicas),
	}, coordArgs...)...)
	co.waitReady(t)
	return co, shards
}

// TestClusterReplicaFailover: with R=2, SIGKILLing one replica mid-
// query-stream costs nothing — every query that completes carries exact
// depths over HTTP 200, with the coordinator recording failovers
// instead of degrading. Killing the group's second replica then
// degrades to the typed 206 path with the dead group named.
func TestClusterReplicaFailover(t *testing.T) {
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	want := serialClusterDepths(t, g, 0)
	co, shards := startReplicaCluster(t, 2, 2, scale, nil,
		"-recovery-budget", "1s", "-max-attempts", "2", "-heartbeat", "50ms")

	res, status := clusterBFS(t, co, 0, true)
	if status != http.StatusOK {
		t.Fatalf("baseline query: HTTP %d", status)
	}
	assertClusterExact(t, res, want)

	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		mu        sync.Mutex
		queries   int
		failovers int
		failure   error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, status := clusterBFSNoFatal(co, 0)
			mu.Lock()
			queries++
			switch {
			case res == nil:
				failure = fmt.Errorf("query failed with HTTP %d", status)
			case status != http.StatusOK || res.Incomplete:
				failure = fmt.Errorf("query degraded (HTTP %d, dead groups %v) though a replica survives", status, res.DeadShards)
			default:
				for v := range want {
					if res.Depth[v] != want[v] {
						failure = fmt.Errorf("vertex %d: depth %d after failover, serial %d", v, res.Depth[v], want[v])
						break
					}
				}
				if res.Failovers > 0 {
					failovers++
				}
			}
			done := failure != nil
			mu.Unlock()
			if done {
				return
			}
		}
	}()

	// SIGKILL group 0's primary replica mid-stream; it never comes back.
	time.Sleep(150 * time.Millisecond)
	shards[0].kill(t)
	time.Sleep(2500 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	if failure != nil {
		mu.Unlock()
		t.Fatalf("%v\ncoordinator logs:\n%s", failure, co.logs)
	}
	q, f := queries, failovers
	mu.Unlock()
	if q < 2 {
		t.Fatalf("only %d queries completed; stream never straddled the kill", q)
	}
	if f == 0 {
		t.Fatalf("none of %d queries recorded a failover; the kill was invisible", q)
	}
	t.Logf("%d queries, %d failed over to the surviving replica", q, f)

	// Kill the surviving sibling: the whole group is gone, so the next
	// query must degrade (206) with group 0 listed dead.
	shards[1].kill(t)
	res, status = clusterBFS(t, co, 0, true)
	if status != http.StatusPartialContent {
		t.Fatalf("whole-group death returned HTTP %d, want 206", status)
	}
	if !res.Incomplete || len(res.DeadShards) != 1 || res.DeadShards[0] != 0 {
		t.Fatalf("degraded response: incomplete=%v dead=%v, want incomplete with group 0 dead", res.Incomplete, res.DeadShards)
	}
}

// TestClusterStandbyTakeover: the active coordinator journals per-round
// epoch state and mirrors it to a standby; SIGKILLing the active mid-
// query promotes the standby, which finishes the in-flight epoch from
// the journaled round (no epoch restart — shards replay their cached
// rounds) and then serves fresh queries exactly.
func TestClusterStandbyTakeover(t *testing.T) {
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	want := serialClusterDepths(t, g, 0)
	// The expand delay slows rounds so the SIGKILL lands mid-epoch.
	var shards []*daemon
	urls := ""
	for i := 0; i < 2; i++ {
		s := startShard(t, freePort(t), i, 2, scale, "", "-chaos-expand-delay", "100ms")
		if i > 0 {
			urls += ","
		}
		urls += "http://" + s.addr
		shards = append(shards, s)
	}
	for _, s := range shards {
		s.waitReady(t)
	}
	active := startDaemon(t, "-coordinate", urls,
		"-state-dir", t.TempDir(), "-lease-ttl", "1s", "-heartbeat", "50ms")
	active.waitReady(t)
	standby := startDaemon(t, "-standby-of", active.url(""),
		"-state-dir", t.TempDir(), "-lease-ttl", "1s", "-heartbeat", "50ms")
	// Let the standby register with the active for mirror pushes.
	time.Sleep(500 * time.Millisecond)

	res, status := clusterBFS(t, active, 0, true)
	if status != http.StatusOK {
		t.Fatalf("baseline query: HTTP %d", status)
	}
	assertClusterExact(t, res, want)

	// Launch a slow query and SIGKILL the active mid-epoch; the client's
	// connection dies with it.
	go func() {
		body, _ := json.Marshal(clusterBFSRequest{Source: 0})
		resp, err := http.Post(active.url("/cluster/bfs"), "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(250 * time.Millisecond)
	active.kill(t)

	// The standby notices the unrenewed lease, takes over, and resumes
	// the journaled epoch; /readyz flips to 200 only after that.
	standby.waitReady(t)
	res, status = clusterBFS(t, standby, 0, true)
	if status != http.StatusOK {
		t.Fatalf("post-takeover query: HTTP %d", status)
	}
	assertClusterExact(t, res, want)

	// Log assertions want the process fully reaped first: cmd.Wait (not
	// Process.Wait) joins the output-copier goroutines feeding d.logs.
	logs := stopAndLogs(standby)
	if !bytes.Contains([]byte(logs), []byte("standby: takeover complete")) {
		t.Fatalf("standby never logged its takeover:\n%s", logs)
	}
	if !bytes.Contains([]byte(logs), []byte("resumed in-flight epoch")) {
		t.Fatalf("standby never resumed the journaled epoch:\n%s", logs)
	}
	if !bytes.Contains([]byte(logs), []byte("epoch restarts 0")) {
		t.Fatalf("resume restarted the epoch instead of replaying checkpointed rounds:\n%s", logs)
	}
}

// TestClusterStaleCoordinatorFenced: chaos suppresses every lease
// renewal, so the standby takes over while the old coordinator is still
// alive. Once the new coordinator's fencing token has reached the
// shards, the deposed one's queries come back as typed 409s — never
// half-applied rounds.
func TestClusterStaleCoordinatorFenced(t *testing.T) {
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	want := serialClusterDepths(t, g, 0)
	var shards []*daemon
	urls := ""
	for i := 0; i < 2; i++ {
		s := startShard(t, freePort(t), i, 2, scale, "")
		if i > 0 {
			urls += ","
		}
		urls += "http://" + s.addr
		shards = append(shards, s)
	}
	for _, s := range shards {
		s.waitReady(t)
	}
	active := startDaemon(t, "-coordinate", urls,
		"-state-dir", t.TempDir(), "-lease-ttl", "700ms", "-heartbeat", "50ms",
		"-chaos-failover-prob", "1", "-chaos-seed", "3")
	active.waitReady(t)
	standby := startDaemon(t, "-standby-of", active.url(""),
		"-state-dir", t.TempDir(), "-lease-ttl", "700ms", "-heartbeat", "50ms")

	// Every renewal is suppressed, so the standby promotes itself while
	// the old coordinator keeps running.
	standby.waitReady(t)

	// The new coordinator's first query raises the shards' fencing bar.
	res, status := clusterBFS(t, standby, 0, true)
	if status != http.StatusOK {
		t.Fatalf("promoted standby query: HTTP %d", status)
	}
	assertClusterExact(t, res, want)

	// The deposed coordinator's next round is fenced: typed 409, and it
	// marks itself deposed (503 on /readyz) rather than retrying.
	if res, status := clusterBFSNoFatal(active, 0); res != nil || status != http.StatusConflict {
		t.Fatalf("stale coordinator answered HTTP %d, want 409", status)
	}
	resp, err := http.Get(active.url("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deposed coordinator /readyz returned %d, want 503", resp.StatusCode)
	}

	// The promoted coordinator keeps serving exactly.
	res, status = clusterBFS(t, standby, 0, true)
	if status != http.StatusOK {
		t.Fatalf("second standby query: HTTP %d", status)
	}
	assertClusterExact(t, res, want)
}

// TestClusterBootOrder: shards started before the coordinator even
// listens keep retrying registration with backoff, so boot order does
// not matter — the cluster assembles once the coordinator appears.
func TestClusterBootOrder(t *testing.T) {
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	want := serialClusterDepths(t, g, 0)
	coordAddr := freePort(t)
	for gid := 0; gid < 2; gid++ {
		for r := 0; r < 2; r++ {
			startShard(t, freePort(t), gid, 2, scale, "",
				"-replica-id", strconv.Itoa(r), "-coordinator", "http://"+coordAddr)
		}
	}
	// Shards are now dialing a coordinator that does not exist yet.
	time.Sleep(400 * time.Millisecond)
	co := startCoordinatorAt(t, coordAddr, "-coordinate", "auto", "-shards", "2", "-replicas", "2")
	co.waitReady(t)
	res, status := clusterBFS(t, co, 0, true)
	if status != http.StatusOK {
		t.Fatalf("query after late assembly: HTTP %d", status)
	}
	assertClusterExact(t, res, want)
}

// TestShardReadyz: the shard readiness probe reports replica identity,
// protocol position, fencing token and checkpoint-dir writability — and
// flips to 503 when the checkpoint directory stops accepting writes.
func TestShardReadyz(t *testing.T) {
	scale := clusterScale(t)
	dir := t.TempDir()
	ckpt := dir + "/ckpt"
	if err := os.Mkdir(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	primary := startShard(t, freePort(t), 0, 2, scale, ckpt)
	primary.waitReady(t)

	var out shardReadyz
	getReadyz := func(d *daemon) int {
		t.Helper()
		resp, err := http.Get(d.url("/readyz"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out = shardReadyz{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}
	if status := getReadyz(primary); status != http.StatusOK {
		t.Fatalf("/readyz returned %d: %+v", status, out)
	}
	if out.Role != "primary" || out.Group != 0 || out.Replica != 0 {
		t.Fatalf("identity %q group %d replica %d, want primary 0/0", out.Role, out.Group, out.Replica)
	}
	if out.Lo != 0 || out.Hi == 0 || out.Epoch != 0 || out.Fence != 0 {
		t.Fatalf("fresh shard reports lo=%d hi=%d epoch=%d fence=%d", out.Lo, out.Hi, out.Epoch, out.Fence)
	}
	if !out.CheckpointWritable || out.CheckpointDir != ckpt {
		t.Fatalf("checkpoint probe: writable=%v dir=%q", out.CheckpointWritable, out.CheckpointDir)
	}

	secondary := startShard(t, freePort(t), 1, 2, scale, "", "-replica-id", "1")
	secondary.waitReady(t)
	if status := getReadyz(secondary); status != http.StatusOK {
		t.Fatalf("secondary /readyz returned %d: %+v", status, out)
	}
	if out.Role != "secondary" || out.Group != 1 || out.Replica != 1 {
		t.Fatalf("identity %q group %d replica %d, want secondary 1/1", out.Role, out.Group, out.Replica)
	}

	// Break the checkpoint directory (a file now occupies its path): the
	// shard can no longer persist rounds, so it must stop claiming ready.
	if err := os.RemoveAll(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status := getReadyz(primary); status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with broken checkpoint dir returned %d, want 503 (%+v)", status, out)
	}
	if out.CheckpointWritable || out.CheckpointError == "" {
		t.Fatalf("broken checkpoint dir not reported: %+v", out)
	}
}
