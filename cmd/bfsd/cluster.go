package main

// Cluster modes: besides the standalone query daemon, bfsd can run as
// one shard of a distributed BFS cluster (-shard-id/-shards) or as the
// cluster's coordinator (-coordinate). Shards own a contiguous 1D
// vertex partition of a shared graph (every shard loads the same graph
// and serves only its slice); the coordinator drives level-synchronous
// rounds over the shards' HTTP API with bitmap-compressed frontier
// exchange, heartbeat failure detection, retried idempotent round
// messages and checkpointed crash recovery (see cluster/coord).
//
//	# three shards + a coordinator over a generated scale-14 RMAT graph
//	bfsd -addr :9001 -shard-id 0 -shards 3 -gen rmat -scale 14 -checkpoint-dir /tmp/s0 &
//	bfsd -addr :9002 -shard-id 1 -shards 3 -gen rmat -scale 14 -checkpoint-dir /tmp/s1 &
//	bfsd -addr :9003 -shard-id 2 -shards 3 -gen rmat -scale 14 -checkpoint-dir /tmp/s2 &
//	bfsd -addr :9000 -coordinate http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//	curl -s -X POST localhost:9000/cluster/bfs -d '{"source":0}'
//
// With -coordinate auto the coordinator instead waits for -shards
// shard processes to announce themselves at POST /cluster/register,
// so shards can come up in any order on dynamic ports (each shard is
// then started with -coordinator http://coordinator-addr).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"fastbfs/cluster"
	"fastbfs/cluster/coord"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// clusterFlags carries the cluster-mode command line.
type clusterFlags struct {
	shardID     int
	shards      int
	coordinator string // shard: register with this coordinator URL
	ckptDir     string

	coordinate     string // coordinator: comma-separated shard URLs or "auto"
	rpcTimeout     time.Duration
	recoveryBudget time.Duration
	heartbeat      time.Duration
	maxAttempts    int

	chaosSeed       uint64
	chaosSendProb   float64
	chaosExpandProb float64
}

// runShardMode serves one partition of the cluster: the shard API plus
// /healthz and /readyz so standard probes (and the crash-test harness)
// work unchanged. Blocks until SIGINT/SIGTERM.
func runShardMode(addr string, cf clusterFlags, g *graph.Graph) error {
	if cf.shards < 1 || cf.shardID >= cf.shards {
		return fmt.Errorf("-shard-id %d requires -shards > %d", cf.shardID, cf.shardID)
	}
	var inj *faultinject.Plan
	if cf.chaosExpandProb > 0 {
		inj = &faultinject.Plan{Seed: cf.chaosSeed, Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteShardExpand: {FaultProb: cf.chaosExpandProb},
		}}
		log.Printf("chaos: failing %.0f%% of expand rounds (seed %d)", 100*cf.chaosExpandProb, cf.chaosSeed)
	}
	s, err := coord.NewShard(g, cf.shardID, cf.shards, cf.ckptDir, inj)
	if err != nil {
		return err
	}
	lo, hi := s.Range()
	log.Printf("shard %d/%d owns vertices [%d,%d) of %d", cf.shardID, cf.shards, lo, hi, g.NumVertices())

	mux := http.NewServeMux()
	mux.Handle("/shard/", s.Handler())
	ok := func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") }
	mux.HandleFunc("GET /healthz", ok)
	mux.HandleFunc("GET /readyz", ok)

	server := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("shard listening on %s", addr)
		errCh <- server.ListenAndServe()
	}()

	if cf.coordinator != "" {
		if err := registerWithCoordinator(cf.coordinator, cf.shardID, addr); err != nil {
			server.Close()
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return server.Shutdown(sctx)
}

// registerWithCoordinator announces this shard's reachable URL. The
// coordinator may still be booting, so registration retries briefly.
func registerWithCoordinator(coordURL string, id int, addr string) error {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	body, _ := json.Marshal(map[string]any{"id": id, "url": "http://" + addr})
	var last error
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := http.Post(coordURL+"/cluster/register", "application/json", strings.NewReader(string(body)))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				log.Printf("registered with coordinator %s", coordURL)
				return nil
			}
			last = fmt.Errorf("register: %s", resp.Status)
		} else {
			last = err
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("registering with coordinator %s: %w", coordURL, last)
}

// clusterBFSRequest is the coordinator's query body.
type clusterBFSRequest struct {
	Source uint32 `json:"source"`
	// IncludeDepth asks for the full depth array (one int32 per vertex)
	// in the response — meant for validation harnesses, not production.
	IncludeDepth bool `json:"include_depth,omitempty"`
}

// clusterBFSResponse mirrors coord.Result over JSON.
type clusterBFSResponse struct {
	Source          uint32  `json:"source"`
	Visited         int64   `json:"visited"`
	Rounds          int     `json:"rounds"`
	ClaimedPerRound []int64 `json:"claimed_per_round"`
	Epoch           uint64  `json:"epoch"`
	Incomplete      bool    `json:"incomplete"`
	DeadShards      []int   `json:"dead_shards,omitempty"`
	Retries         int     `json:"retries"`
	EpochRestarts   int     `json:"epoch_restarts"`
	Depth           []int32 `json:"depth,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// runCoordinatorMode runs the cluster coordinator. Blocks until
// SIGINT/SIGTERM.
func runCoordinatorMode(addr string, cf clusterFlags) error {
	var inj *faultinject.Plan
	if cf.chaosSendProb > 0 {
		inj = &faultinject.Plan{Seed: cf.chaosSeed, Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteCoordSend: {FaultProb: cf.chaosSendProb},
		}}
		log.Printf("chaos: dropping %.0f%% of round sends (seed %d)", 100*cf.chaosSendProb, cf.chaosSeed)
	}
	cfg := coord.Config{
		RPCTimeout:        cf.rpcTimeout,
		MaxAttempts:       cf.maxAttempts,
		RecoveryBudget:    cf.recoveryBudget,
		HeartbeatInterval: cf.heartbeat,
		Backoff:           cluster.Backoff{Base: 25 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: cf.chaosSeed},
		Injector:          inj,
	}

	// reg collects shard URLs — fixed from the flag, or dynamically via
	// POST /cluster/register in auto mode.
	reg := &registry{want: cf.shards, done: make(chan struct{})}
	if cf.coordinate != "auto" {
		reg.fix(strings.Split(cf.coordinate, ","))
	} else if cf.shards < 1 {
		return errors.New("-coordinate auto requires -shards")
	}

	var (
		mu sync.Mutex // serializes runs: the round protocol is one-at-a-time
		co *coord.Coordinator
	)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", reg.handle)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ready := co != nil
		mu.Unlock()
		if !ready {
			http.Error(w, "cluster not assembled", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /cluster/bfs", func(w http.ResponseWriter, r *http.Request) {
		var req clusterBFSRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if co == nil {
			http.Error(w, "cluster not assembled", http.StatusServiceUnavailable)
			return
		}
		start := time.Now()
		res, err := co.Run(r.Context(), req.Source)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out := clusterBFSResponse{
			Source: res.Source, Visited: res.Visited, Rounds: res.Rounds,
			ClaimedPerRound: res.ClaimedPerRound, Epoch: res.Epoch,
			Incomplete: res.Incomplete, DeadShards: res.DeadShards,
			Retries: res.Retries, EpochRestarts: res.EpochRestarts,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		}
		if req.IncludeDepth {
			out.Depth = res.Depth
		}
		w.Header().Set("Content-Type", "application/json")
		if res.Incomplete {
			// A degraded answer is typed, not hidden: 206 tells callers
			// the reachable subset excludes dead shards' vertices.
			w.WriteHeader(http.StatusPartialContent)
		}
		json.NewEncoder(w).Encode(&out)
	})

	server := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("coordinator listening on %s", addr)
		errCh <- server.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Assemble the cluster in the background so the listener (and
	// /cluster/register) is up first.
	go func() {
		select {
		case <-reg.done:
		case <-ctx.Done():
			return
		}
		cfg.Shards = reg.urls()
		c, err := coord.Open(ctx, cfg)
		if err != nil {
			log.Printf("coordinator: assembling cluster: %v", err)
			errCh <- err
			return
		}
		mu.Lock()
		co = c
		mu.Unlock()
		log.Printf("cluster assembled: %d shards, %d vertices", len(cfg.Shards), c.NumVertices())
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return server.Shutdown(sctx)
}

// registry collects shard URLs until all expected shards have reported.
type registry struct {
	mu   sync.Mutex
	want int
	got  map[int]string
	done chan struct{} // closed once the shard set is complete
}

func (r *registry) fix(urls []string) {
	r.got = make(map[int]string, len(urls))
	for i, u := range urls {
		r.got[i] = strings.TrimSpace(u)
	}
	r.want = len(urls)
	close(r.done)
}

func (r *registry) handle(w http.ResponseWriter, req *http.Request) {
	var body struct {
		ID  int    `json:"id"`
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<12)).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-r.done:
		// Late or duplicate registration after assembly: accept a known
		// URL (shard restart), refuse anything new.
		if r.got[body.ID] != body.URL {
			http.Error(w, "cluster already assembled", http.StatusConflict)
			return
		}
		fmt.Fprintln(w, "ok")
		return
	default:
	}
	if body.ID < 0 || body.ID >= r.want || body.URL == "" {
		http.Error(w, fmt.Sprintf("bad registration: id %d of %d, url %q", body.ID, r.want, body.URL), http.StatusBadRequest)
		return
	}
	if r.got == nil {
		r.got = make(map[int]string, r.want)
	}
	r.got[body.ID] = body.URL
	log.Printf("shard %d registered at %s (%d/%d)", body.ID, body.URL, len(r.got), r.want)
	if len(r.got) == r.want {
		close(r.done)
	}
	fmt.Fprintln(w, "ok")
}

func (r *registry) urls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	urls := make([]string, r.want)
	for i := range urls {
		urls[i] = r.got[i]
	}
	return urls
}

// loadClusterGraph builds the single shared graph a shard serves, from
// the same -graph/-gen flags as standalone mode. Every shard of a
// cluster must load the identical graph (same file, or same generator
// and seed); the coordinator cross-checks only the partition ranges, so
// mismatched graphs are the operator's failure to keep flags in sync.
func loadClusterGraph(graphs graphFlags, genKind string, n, degree, scale, edgeFactor int, seed uint64, mmap bool) (*graph.Graph, error) {
	if len(graphs) > 1 || (len(graphs) == 1 && genKind != "") {
		return nil, errors.New("shard mode serves exactly one graph: pass one -graph or one -gen")
	}
	if len(graphs) == 1 {
		path := graphs[0]
		if _, p, ok := strings.Cut(path, "="); ok {
			path = p
		}
		if mmap {
			return graph.LoadMmap(path)
		}
		return graph.Load(path)
	}
	switch genKind {
	case "ur":
		return gen.UniformRandom(n, degree, seed)
	case "rmat":
		return gen.RMAT(gen.Graph500Params(scale, edgeFactor), seed)
	case "":
		return nil, errors.New("shard mode needs a graph: pass -graph or -gen")
	default:
		return nil, fmt.Errorf("unknown -gen kind %q", genKind)
	}
}
