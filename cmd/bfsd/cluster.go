package main

// Cluster modes: besides the standalone query daemon, bfsd can run as
// one shard of a distributed BFS cluster (-shard-id/-shards), as the
// cluster's coordinator (-coordinate), or as a standby coordinator
// (-standby-of, see ha.go). Shards own a contiguous 1D vertex partition
// of a shared graph (every shard loads the same graph and serves only
// its slice); the coordinator drives level-synchronous rounds over the
// shards' HTTP API with bitmap-compressed frontier exchange, heartbeat
// failure detection, retried idempotent round messages and checkpointed
// crash recovery (see cluster/coord).
//
//	# three shards + a coordinator over a generated scale-14 RMAT graph
//	bfsd -addr :9001 -shard-id 0 -shards 3 -gen rmat -scale 14 -checkpoint-dir /tmp/s0 &
//	bfsd -addr :9002 -shard-id 1 -shards 3 -gen rmat -scale 14 -checkpoint-dir /tmp/s1 &
//	bfsd -addr :9003 -shard-id 2 -shards 3 -gen rmat -scale 14 -checkpoint-dir /tmp/s2 &
//	bfsd -addr :9000 -coordinate http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//	curl -s -X POST localhost:9000/cluster/bfs -d '{"source":0}'
//
// With -coordinate auto the coordinator instead waits for shard
// processes to announce themselves at POST /cluster/register, so shards
// can come up in any order on dynamic ports (each shard is then started
// with -coordinator http://coordinator-addr; registration retries with
// backoff, so the coordinator may even boot last).
//
// With -replicas R every partition is served by a replica group of R
// shards (launch R shards per -shard-id, distinguished by -replica-id;
// with explicit -coordinate URLs list them group-major). The
// coordinator fails mid-round over to a group's surviving replicas, so
// killing any single shard leaves results exact — only whole-group loss
// degrades to a 206 partial result.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"fastbfs/cluster"
	"fastbfs/cluster/coord"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// clusterFlags carries the cluster-mode command line.
type clusterFlags struct {
	shardID     int
	replicaID   int
	shards      int
	coordinator string // shard: register with this coordinator URL
	ckptDir     string

	coordinate     string // coordinator: comma-separated shard URLs or "auto"
	replicas       int
	standbyOf      string // standby: active coordinator URL to watch
	leaseTTL       time.Duration
	stateDir       string // coordinator/standby: journal dir (from -state-dir)
	rpcTimeout     time.Duration
	recoveryBudget time.Duration
	heartbeat      time.Duration
	maxAttempts    int
	hedgeAfter     time.Duration
	auditReplicas  bool

	chaosSeed         uint64
	chaosSendProb     float64
	chaosExpandProb   float64
	chaosExpandDelay  time.Duration
	chaosFailoverProb float64
	chaosDivergeProb  float64
	chaosStallDelay   time.Duration
}

// signalContext is the shared SIGINT/SIGTERM context for the blocking
// cluster modes.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
}

// openCoordJournal opens the coordinator state journal under stateDir
// (in a subdirectory, so the dir can be shared with a serve daemon's
// control-plane journal without name collisions).
func openCoordJournal(stateDir string) (*coord.Journal, error) {
	dir := filepath.Join(stateDir, "coord")
	j, err := coord.OpenJournal(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("opening coordinator journal in %s: %w", dir, err)
	}
	if j.TornBytes > 0 {
		log.Printf("coordinator journal tail was torn: truncated %d bytes (crash mid-append)", j.TornBytes)
	}
	if j.SnapshotCorrupt {
		log.Printf("coordinator journal snapshot was corrupt; recovered from the log alone")
	}
	return j, nil
}

// shardReadyz is the shard-mode /readyz body: replica identity, the
// last checkpointed protocol position, the fencing token in force, and
// whether the checkpoint directory accepts writes (a shard that cannot
// checkpoint fails every round, so it is not ready).
type shardReadyz struct {
	Role               string `json:"role"`
	Group              int    `json:"group"`
	Replica            int    `json:"replica"`
	Lo                 uint32 `json:"lo"`
	Hi                 uint32 `json:"hi"`
	Epoch              uint64 `json:"epoch"`
	Round              uint32 `json:"round"`
	Fence              uint64 `json:"fence"`
	CheckpointDir      string `json:"checkpoint_dir,omitempty"`
	CheckpointWritable bool   `json:"checkpoint_writable"`
	CheckpointError    string `json:"checkpoint_error,omitempty"`
}

// probeDirWritable verifies dir accepts a small write (created, synced
// via Close, removed) — the same operations a round checkpoint needs.
func probeDirWritable(dir string) error {
	f, err := os.CreateTemp(dir, ".readyz-probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	_, werr := f.Write([]byte("ok"))
	cerr := f.Close()
	os.Remove(name)
	if werr != nil {
		return werr
	}
	return cerr
}

// shardInjector builds the shard-side chaos plan from the flags.
func shardInjector(cf clusterFlags) *faultinject.Plan {
	rules := map[faultinject.Site]faultinject.Rule{}
	if cf.chaosExpandProb > 0 {
		rules[faultinject.SiteShardExpand] = faultinject.Rule{FaultProb: cf.chaosExpandProb}
		log.Printf("chaos: failing %.0f%% of expand rounds (seed %d)", 100*cf.chaosExpandProb, cf.chaosSeed)
	}
	if cf.chaosExpandDelay > 0 {
		r := rules[faultinject.SiteShardExpand]
		r.DelayProb, r.MaxDelay = 1, cf.chaosExpandDelay
		rules[faultinject.SiteShardExpand] = r
		log.Printf("chaos: delaying every expand round by up to %v (seed %d)", cf.chaosExpandDelay, cf.chaosSeed)
	}
	if cf.chaosStallDelay > 0 {
		rules[faultinject.SiteShardStall] = faultinject.Rule{DelayProb: 1, MaxDelay: cf.chaosStallDelay}
		log.Printf("chaos: stalling every expand round by up to %v with heartbeats healthy (seed %d)", cf.chaosStallDelay, cf.chaosSeed)
	}
	if len(rules) == 0 {
		return nil
	}
	return &faultinject.Plan{Seed: cf.chaosSeed, Rules: rules}
}

// runShardMode serves one partition of the cluster: the shard API plus
// /healthz and a /readyz that reports replica role, checkpoint position
// and checkpoint-dir writability. Blocks until SIGINT/SIGTERM.
func runShardMode(addr string, cf clusterFlags, g *graph.Graph) error {
	if cf.shards < 1 || cf.shardID >= cf.shards {
		return fmt.Errorf("-shard-id %d requires -shards > %d", cf.shardID, cf.shardID)
	}
	s, err := coord.NewReplicaShard(g, cf.shardID, cf.replicaID, cf.shards, cf.ckptDir, shardInjector(cf))
	if err != nil {
		return err
	}
	lo, hi := s.Range()
	log.Printf("shard %d/%d replica %d owns vertices [%d,%d) of %d",
		cf.shardID, cf.shards, cf.replicaID, lo, hi, g.NumVertices())

	mux := http.NewServeMux()
	mux.Handle("/shard/", s.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Status()
		out := shardReadyz{
			Role: st.Role, Group: st.Group, Replica: st.Replica,
			Lo: st.Lo, Hi: st.Hi, Epoch: st.Epoch, Round: st.Round, Fence: st.Fence,
			CheckpointDir: cf.ckptDir,
		}
		status := http.StatusOK
		if cf.ckptDir != "" {
			if err := probeDirWritable(cf.ckptDir); err != nil {
				out.CheckpointError = err.Error()
				status = http.StatusServiceUnavailable
			} else {
				out.CheckpointWritable = true
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(&out)
	})

	server := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("shard listening on %s", addr)
		errCh <- server.ListenAndServe()
	}()

	if cf.coordinator != "" {
		if err := registerWithCoordinator(cf.coordinator, cf.shardID, cf.replicaID, addr); err != nil {
			server.Close()
			return err
		}
	}

	ctx, stop := signalContext()
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return server.Shutdown(sctx)
}

// registerWithCoordinator announces this shard's reachable URL,
// retrying with jittered backoff so shard/coordinator boot order does
// not matter (the coordinator may take a while to start listening).
// Registrations the coordinator actively refuses (bad id, conflicting
// URL after assembly) fail fast: retrying an invalid registration
// cannot succeed.
func registerWithCoordinator(coordURL string, id, replica int, addr string) error {
	body, _ := json.Marshal(map[string]any{"id": id, "replica": replica, "url": selfURL(addr)})
	bo := cluster.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	deadline := time.Now().Add(2 * time.Minute)
	var last error
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(coordURL+"/cluster/register", "application/json", strings.NewReader(string(body)))
		if err == nil {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				log.Printf("registered with coordinator %s", coordURL)
				return nil
			case http.StatusBadRequest, http.StatusConflict:
				return fmt.Errorf("registering with coordinator %s: %s: %s",
					coordURL, resp.Status, bytes.TrimSpace(msg))
			default:
				last = fmt.Errorf("register: %s: %s", resp.Status, bytes.TrimSpace(msg))
			}
		} else {
			last = err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("registering with coordinator %s: %w", coordURL, last)
		}
		time.Sleep(bo.Delay(attempt, uint64(id)<<8|uint64(replica)))
	}
}

// clusterBFSRequest is the coordinator's query body.
type clusterBFSRequest struct {
	Source uint32 `json:"source"`
	// IncludeDepth asks for the full depth array (one int32 per vertex)
	// in the response — meant for validation harnesses, not production.
	IncludeDepth bool `json:"include_depth,omitempty"`
}

// clusterBFSResponse mirrors coord.Result over JSON.
type clusterBFSResponse struct {
	Source          uint32  `json:"source"`
	Visited         int64   `json:"visited"`
	Rounds          int     `json:"rounds"`
	ClaimedPerRound []int64 `json:"claimed_per_round"`
	Epoch           uint64  `json:"epoch"`
	Incomplete      bool    `json:"incomplete"`
	DeadShards      []int   `json:"dead_shards,omitempty"`
	Retries         int     `json:"retries"`
	EpochRestarts   int     `json:"epoch_restarts"`
	Failovers       int     `json:"failovers"`
	Divergences     int     `json:"divergences,omitempty"`
	Hedges          int     `json:"hedges,omitempty"`
	HedgeWins       int     `json:"hedge_wins,omitempty"`
	Depth           []int32 `json:"depth,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// runCoordinatorMode runs the active cluster coordinator. With
// -state-dir it journals membership, its lease and per-round epoch
// state so a -standby-of coordinator can take over. Blocks until
// SIGINT/SIGTERM.
func runCoordinatorMode(addr string, cf clusterFlags) error {
	inj := coordInjector(cf)
	cs := newCoordServer(addr, cf, inj)
	if cf.stateDir != "" {
		j, err := openCoordJournal(cf.stateDir)
		if err != nil {
			return err
		}
		defer j.Close()
		cs.journal = j
		j.Mirror = cs.mirrorHook
		// The fencing token must exceed every token this journal has ever
		// held a lease for, so a restart (or takeover of our old standby
		// role) can never reuse one the shards already admitted.
		cs.fence = 1
		if l := j.State().Lease; l != nil {
			cs.fence = l.Token + 1
		}
		log.Printf("coordinator: journaling state under %s (fencing token %d, lease TTL %v)",
			j.Dir(), cs.fence, cs.leaseTTL)
	}

	// reg collects shard URLs — fixed from the flag, or dynamically via
	// POST /cluster/register in auto mode.
	replicas := cf.replicas
	if replicas < 1 {
		replicas = 1
	}
	reg := &registry{replicas: replicas, groups: cf.shards, done: make(chan struct{})}
	if cf.coordinate != "auto" {
		if err := reg.fix(strings.Split(cf.coordinate, ",")); err != nil {
			return err
		}
	} else if cf.shards < 1 {
		return errors.New("-coordinate auto requires -shards")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", reg.handle)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("GET /readyz", cs.handleReadyz)
	mux.HandleFunc("POST /cluster/bfs", cs.handleBFS)
	mux.HandleFunc("GET /cluster/state", cs.handleState)
	mux.HandleFunc("POST /cluster/mirror", cs.handleMirror)

	server := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("coordinator listening on %s", addr)
		errCh <- server.ListenAndServe()
	}()

	ctx, stop := signalContext()
	defer stop()

	if cs.journal != nil {
		if err := cs.publishLease(); err != nil {
			return fmt.Errorf("publishing initial lease: %w", err)
		}
		go cs.renewLoop(ctx)
		go cs.mirrorPusher(ctx)
	}

	// Assemble the cluster in the background so the listener (and
	// /cluster/register) is up first.
	go func() {
		select {
		case <-reg.done:
		case <-ctx.Done():
			return
		}
		urls := reg.urls()
		if cs.journal != nil {
			a := &coord.GroupAssignment{
				Groups:   uint32(len(urls) / replicas),
				Replicas: uint32(replicas),
				URLs:     urls,
			}
			if err := cs.journal.AppendAssignment(a); err != nil {
				errCh <- fmt.Errorf("journaling shard assignment: %w", err)
				return
			}
		}
		cfg := clusterCoordConfig(cf, inj)
		cfg.Shards = urls
		if err := cs.activate(ctx, cfg); err != nil {
			if errors.Is(err, coord.ErrFenced) {
				// Deposed before we even got going (a standby took over
				// while we were down): keep serving 409s rather than exit,
				// so clients get a typed answer.
				log.Printf("coordinator: %v", err)
				return
			}
			log.Printf("coordinator: assembling cluster: %v", err)
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return server.Shutdown(sctx)
}

// registry collects shard URLs until every replica of every group has
// reported. Keys are group-major flat indices (group*replicas+replica),
// matching coord.Config.Shards order.
type registry struct {
	mu       sync.Mutex
	groups   int
	replicas int
	got      map[int]string
	done     chan struct{} // closed once the shard set is complete
}

func (r *registry) want() int { return r.groups * r.replicas }

// fix seeds the registry from an explicit group-major URL list.
func (r *registry) fix(urls []string) error {
	if len(urls)%r.replicas != 0 {
		return fmt.Errorf("-coordinate lists %d URLs, not divisible into groups of %d replicas", len(urls), r.replicas)
	}
	r.got = make(map[int]string, len(urls))
	for i, u := range urls {
		r.got[i] = strings.TrimSpace(u)
	}
	r.groups = len(urls) / r.replicas
	close(r.done)
	return nil
}

func (r *registry) handle(w http.ResponseWriter, req *http.Request) {
	var body struct {
		ID      int    `json:"id"`
		Replica int    `json:"replica"`
		URL     string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<12)).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := body.ID*r.replicas + body.Replica
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-r.done:
		// Late or duplicate registration after assembly: accept a known
		// URL (shard restart), refuse anything new.
		if r.got[key] != body.URL {
			http.Error(w, "cluster already assembled", http.StatusConflict)
			return
		}
		fmt.Fprintln(w, "ok")
		return
	default:
	}
	if body.ID < 0 || body.ID >= r.groups || body.Replica < 0 || body.Replica >= r.replicas || body.URL == "" {
		http.Error(w, fmt.Sprintf("bad registration: shard %d replica %d of %dx%d, url %q",
			body.ID, body.Replica, r.groups, r.replicas, body.URL), http.StatusBadRequest)
		return
	}
	if r.got == nil {
		r.got = make(map[int]string, r.want())
	}
	r.got[key] = body.URL
	log.Printf("shard %d replica %d registered at %s (%d/%d)", body.ID, body.Replica, body.URL, len(r.got), r.want())
	if len(r.got) == r.want() {
		close(r.done)
	}
	fmt.Fprintln(w, "ok")
}

func (r *registry) urls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	urls := make([]string, r.want())
	for i := range urls {
		urls[i] = r.got[i]
	}
	return urls
}

// loadClusterGraph builds the single shared graph a shard serves, from
// the same -graph/-gen flags as standalone mode. Every shard of a
// cluster must load the identical graph (same file, or same generator
// and seed); the coordinator cross-checks only the partition ranges, so
// mismatched graphs are the operator's failure to keep flags in sync.
func loadClusterGraph(graphs graphFlags, genKind string, n, degree, scale, edgeFactor int, seed uint64, mmap bool) (*graph.Graph, error) {
	if len(graphs) > 1 || (len(graphs) == 1 && genKind != "") {
		return nil, errors.New("shard mode serves exactly one graph: pass one -graph or one -gen")
	}
	if len(graphs) == 1 {
		path := graphs[0]
		if _, p, ok := strings.Cut(path, "="); ok {
			path = p
		}
		if mmap {
			return graph.LoadMmap(path)
		}
		return graph.Load(path)
	}
	switch genKind {
	case "ur":
		return gen.UniformRandom(n, degree, seed)
	case "rmat":
		return gen.RMAT(gen.Graph500Params(scale, edgeFactor), seed)
	case "":
		return nil, errors.New("shard mode needs a graph: pass -graph or -gen")
	default:
		return nil, fmt.Errorf("unknown -gen kind %q", genKind)
	}
}
