//go:build unix

package main

// Process-level crash harness for the durable control plane: these
// tests build the real bfsd binary, run it against a shared state
// directory, SIGKILL it at randomized points while query and mutation
// traffic is in flight, then restart it and assert the journal brings
// back exactly the acknowledged graph set with byte-identical depths.
// A SIGTERM variant checks the graceful path: drain, clean exit,
// recovery, counters reset.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

var bfsdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "bfsd-harness")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	bfsdBin = filepath.Join(dir, "bfsd")
	out, err := exec.Command("go", "build", "-o", bfsdBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building bfsd: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// daemon is one live bfsd process under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	logs *bytes.Buffer
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches bfsd on a fresh port with the given extra args.
// The process is killed at test cleanup if still running.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{addr: freePort(t), logs: &bytes.Buffer{}}
	d.cmd = exec.Command(bfsdBin, append([]string{"-addr", d.addr}, args...)...)
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_, _ = d.cmd.Process.Wait()
		}
	})
	return d
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// waitReady polls /readyz until it returns 200 or the deadline passes.
func (d *daemon) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/readyz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never became ready; logs:\n%s", d.logs)
}

// kill SIGKILLs the daemon and reaps it — the crash under test.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = d.cmd.Process.Wait()
}

// postJSON posts body to path and decodes the response into out (when
// non-nil). Returns the HTTP status.
func (d *daemon) postJSON(t *testing.T, path string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url(path), "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", path, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// loadGraph POSTs /graphs/load and fails the test unless it is acked.
func (d *daemon) loadGraph(t *testing.T, name, path string, mmap bool) {
	t.Helper()
	req := map[string]any{"name": name, "path": path, "mmap": mmap}
	if code := d.postJSON(t, "/graphs/load", req, nil); code != http.StatusOK {
		t.Fatalf("load %q: HTTP %d; logs:\n%s", name, code, d.logs)
	}
}

// graphNames fetches the currently served graph set, sorted.
func (d *daemon) graphNames(t *testing.T) []string {
	t.Helper()
	resp, err := http.Get(d.url("/graphs"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(infos))
	for _, gi := range infos {
		names = append(names, gi.Name)
	}
	sort.Strings(names)
	return names
}

// allDepths queries every depth from source over HTTP.
func (d *daemon) allDepths(t *testing.T, graphName string, source uint32) []int32 {
	t.Helper()
	var resp struct {
		Depths []int32 `json:"depths"`
	}
	req := map[string]any{"graph": graphName, "source": source, "all_depths": true}
	if code := d.postJSON(t, "/query", req, &resp); code != http.StatusOK {
		t.Fatalf("query %q: HTTP %d; logs:\n%s", graphName, code, d.logs)
	}
	return resp.Depths
}

// refDepths is the in-process serial reference for a saved graph file.
func refDepths(t *testing.T, path string, source uint32) []int32 {
	t.Helper()
	g, err := graph.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bfs.RunSerial(g, source)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, g.NumVertices())
	for v := range out {
		out[v] = ref.Depth(uint32(v))
	}
	return out
}

func saveGraphFile(t *testing.T, g *graph.Graph, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCrashRecoveryMidTraffic is the headline crash harness: several
// rounds of load/unload mutations and concurrent query + churn traffic,
// each round ended by a SIGKILL at a randomized point. Every restart
// must serve exactly the acknowledged graph set — the churn graph,
// whose mutations race the kill, may land on either side — and depths
// must be byte-identical to the serial reference.
func TestCrashRecoveryMidTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		t.Fatal(err)
	}
	grid, err := gen.Grid2D(30, 30, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := gen.RMAT(gen.Graph500Params(10, 8), 7)
	if err != nil {
		t.Fatal(err)
	}
	gridPath := saveGraphFile(t, grid, dir, "grid.csr")
	rmatPath := saveGraphFile(t, rmat, dir, "rmat.csr")
	paths := map[string]string{}

	rng := rand.New(rand.NewSource(1))
	acked := map[string]bool{} // graph set implied by acked mutations
	expect := func() []string {
		var names []string
		for name := range acked {
			names = append(names, name)
		}
		sort.Strings(names)
		return names
	}

	const rounds = 4
	for round := 0; round < rounds; round++ {
		d := startDaemon(t, "-state-dir", stateDir, "-snapshot-every", "8")
		d.waitReady(t)
		if got, want := d.graphNames(t), expect(); !equalTolerating(got, want, "churn") {
			t.Fatalf("round %d: recovered graphs %v, want %v (churn optional); logs:\n%s",
				round, got, want, d.logs)
		}
		delete(acked, "churn") // normalize: re-acked below if churn wins again

		// Acked mutations for this round: one new graph (mmap on even
		// rounds), one unload of the graph from two rounds ago.
		name := fmt.Sprintf("g%d", round)
		src := gridPath
		if round%2 == 1 {
			src = rmatPath
		}
		d.loadGraph(t, name, src, round%2 == 0)
		paths[name] = src
		acked[name] = true
		if old := fmt.Sprintf("g%d", round-2); acked[old] {
			if code := d.postJSON(t, "/graphs/unload", map[string]any{"name": old}, nil); code != http.StatusOK {
				t.Fatalf("round %d: unload %q: HTTP %d", round, old, code)
			}
			delete(acked, old)
		}

		// Traffic: query hammers on the acked graphs plus a churn
		// goroutine looping load/unload so the SIGKILL can land inside a
		// journal append, not just between requests.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				names := expect()
				for {
					select {
					case <-stop:
						return
					default:
					}
					g := names[r.Intn(len(names))]
					body, _ := json.Marshal(map[string]any{"graph": g, "source": r.Intn(100)})
					resp, err := http.Post(d.url("/query"), "application/json", bytes.NewReader(body))
					if err != nil {
						return // daemon died mid-request: expected
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(int64(round*10 + i))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op, name := "/graphs/load", map[string]any{"name": "churn", "path": gridPath}
				if i%2 == 1 {
					op, name = "/graphs/unload", map[string]any{"name": "churn"}
				}
				body, _ := json.Marshal(name)
				resp, err := http.Post(d.url(op), "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()

		time.Sleep(time.Duration(5+rng.Intn(40)) * time.Millisecond)
		d.kill(t)
		close(stop)
		wg.Wait()
		paths["churn"] = gridPath
	}

	// Simulate a crash mid-append on top of whatever the last kill left:
	// a partial frame at the journal tail must be truncated, not fatal.
	j := filepath.Join(stateDir, "manifest.log")
	f, err := os.OpenFile(j, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x03, 0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Final restart: exact acked set (churn optional), byte-exact depths.
	d := startDaemon(t, "-state-dir", stateDir)
	d.waitReady(t)
	got := d.graphNames(t)
	if !equalTolerating(got, expect(), "churn") {
		t.Fatalf("final recovery: graphs %v, want %v (churn optional); logs:\n%s", got, expect(), d.logs)
	}
	for _, name := range got {
		for _, source := range []uint32{0, 13} {
			want := refDepths(t, paths[name], source)
			if depths := d.allDepths(t, name, source); !equalDepths(depths, want) {
				t.Fatalf("graph %q source %d: depths diverge from serial reference after recovery", name, source)
			}
		}
	}
	d.kill(t)
}

// TestRestartUnderLoad is the graceful-path twin: SIGTERM under query
// load must drain and exit cleanly, and the restarted daemon must flip
// /readyz back, serve identical depths, and start from fresh counters.
func TestRestartUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		t.Fatal(err)
	}
	g, err := gen.Grid2D(40, 40, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := saveGraphFile(t, g, dir, "g.csr")

	d1 := startDaemon(t, "-state-dir", stateDir)
	d1.waitReady(t)
	d1.loadGraph(t, "g", path, false)
	before := d1.allDepths(t, "g", 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(map[string]any{"graph": "g", "source": r.Intn(1600)})
				resp, err := http.Post(d1.url("/query"), "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(int64(i))
	}
	time.Sleep(30 * time.Millisecond)

	if err := d1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- d1.cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("SIGTERM drain did not exit cleanly: %v; logs:\n%s", err, d1.logs)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; logs:\n%s", d1.logs)
	}
	close(stop)
	wg.Wait()

	d2 := startDaemon(t, "-state-dir", stateDir)
	d2.waitReady(t)
	if got := d2.graphNames(t); len(got) != 1 || got[0] != "g" {
		t.Fatalf("recovered graphs %v, want [g]; logs:\n%s", got, d2.logs)
	}
	after := d2.allDepths(t, "g", 0)
	if !equalDepths(before, after) {
		t.Fatal("depths across SIGTERM restart differ")
	}

	// Counters are process state, not journal state: the restart resets
	// them, while the journal sequence survives.
	resp, err := http.Get(d2.url("/stats"))
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Requests   int64  `json:"requests"`
		JournalSeq uint64 `json:"journal_seq"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests > 4 {
		t.Fatalf("restarted daemon reports %d requests; counters not reset", stats.Requests)
	}
	if stats.JournalSeq == 0 {
		t.Fatal("restarted daemon reports journal_seq 0; durable state not surfaced")
	}
	d2.kill(t)
}

// equalTolerating reports got == want, except that `optional` may
// additionally appear in got (its mutations raced the crash).
func equalTolerating(got, want []string, optional string) bool {
	filtered := got[:0:0]
	for _, name := range got {
		if name != optional {
			filtered = append(filtered, name)
		}
	}
	if len(filtered) != len(want) {
		return false
	}
	for i := range want {
		if filtered[i] != want[i] {
			return false
		}
	}
	return true
}

func equalDepths(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
