package main

// High-availability coordinator plumbing: the journaled active
// coordinator and the lease-watching standby share one coordServer. The
// active publishes a fencing-token lease into its coord.Journal and
// renews it every TTL/3; every round request carries the token, so
// shards reject a coordinator whose lease was taken over (ErrFenced →
// deposed). The standby mirrors the journal two ways — it polls
// GET /cluster/state (which also registers it for pushes) and receives
// best-effort POST /cluster/mirror pushes of every appended record —
// and when the journaled lease expires unrenewed it bumps the token,
// opens the journaled shard assignment, and Resumes the in-flight epoch
// from the journaled round candidates instead of restarting it.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"fastbfs/cluster"
	"fastbfs/cluster/coord"
	"fastbfs/internal/faultinject"
)

// coordServer is the shared serving state of an active or standby
// coordinator. cs.mu serializes traversals (the round protocol is
// one-at-a-time) and guards the activation/deposition transitions.
type coordServer struct {
	mu      sync.Mutex
	co      *coord.Coordinator
	deposed bool

	journal  *coord.Journal
	fence    uint64
	leaseTTL time.Duration
	holder   string // own advertised URL (lease holder, standby address)
	inj      *faultinject.Plan
	seq      faultinject.Sequencer

	standbyMu  sync.Mutex
	standbyURL string
	mirrorCh   chan []byte // capacity 1: latest-wins coalescing
}

func newCoordServer(addr string, cf clusterFlags, inj *faultinject.Plan) *coordServer {
	ttl := cf.leaseTTL
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	return &coordServer{
		leaseTTL: ttl,
		holder:   selfURL(addr),
		inj:      inj,
		mirrorCh: make(chan []byte, 1),
	}
}

// selfURL turns a listen address into the URL peers can reach it at.
func selfURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

// publishLease journals a fresh lease for this coordinator's token.
func (cs *coordServer) publishLease() error {
	return cs.journal.AppendLease(&coord.Lease{
		Token:   cs.fence,
		Expires: time.Now().Add(cs.leaseTTL).UnixNano(),
		Holder:  cs.holder,
	})
}

func (cs *coordServer) isDeposed() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.deposed
}

// renewLoop keeps the lease alive while this coordinator is in charge.
// The faultinject coord.failover site can suppress individual renewals,
// which is the deterministic way to force a standby takeover while the
// active stays up (and then exercises the fencing path).
func (cs *coordServer) renewLoop(ctx context.Context) {
	t := time.NewTicker(cs.leaseTTL / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if cs.isDeposed() {
			return
		}
		d := faultinject.Decide(cs.inj, faultinject.SiteCoordFailover, cs.seq.Next(faultinject.SiteCoordFailover))
		if d.Err != nil {
			log.Printf("chaos: suppressing lease renewal (token %d)", cs.fence)
			continue
		}
		if err := cs.publishLease(); err != nil {
			log.Printf("coordinator: lease renewal: %v", err)
		}
	}
}

// mirrorHook is installed as Journal.Mirror: it must not block (it runs
// under the journal lock), so the capacity-1 channel coalesces — the
// standby only needs the latest state, and its polling covers any
// record a push dropped.
func (cs *coordServer) mirrorHook(rec []byte) {
	cp := append([]byte(nil), rec...)
	for {
		select {
		case cs.mirrorCh <- cp:
			return
		default:
			select {
			case <-cs.mirrorCh:
			default:
			}
		}
	}
}

// mirrorPusher forwards journaled records to the registered standby,
// best effort.
func (cs *coordServer) mirrorPusher(ctx context.Context) {
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		var rec []byte
		select {
		case <-ctx.Done():
			return
		case rec = <-cs.mirrorCh:
		}
		cs.standbyMu.Lock()
		target := cs.standbyURL
		cs.standbyMu.Unlock()
		if target == "" {
			continue
		}
		resp, err := client.Post(target+"/cluster/mirror", "application/octet-stream", bytes.NewReader(rec))
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
			resp.Body.Close()
		}
	}
}

// activate opens the coordinator over the given shard set and, when a
// journal records an unfinished epoch, resumes it before any new query
// is admitted. Held under cs.mu so /cluster/bfs and /readyz observe
// either "not assembled" or a fully caught-up coordinator.
func (cs *coordServer) activate(ctx context.Context, cfg coord.Config) error {
	cfg.Fence = cs.fence
	cfg.Journal = cs.journal
	co, err := coord.Open(ctx, cfg)
	if err != nil {
		return err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.co = co
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	log.Printf("cluster assembled: %d shard URLs in %d groups x %d replicas, %d vertices",
		len(cfg.Shards), len(cfg.Shards)/replicas, replicas, co.NumVertices())
	if cs.journal == nil {
		return nil
	}
	res, err := co.Resume(ctx)
	switch {
	case err == nil && res == nil:
		// No unfinished epoch journaled.
	case err == nil:
		log.Printf("coordinator: resumed in-flight epoch %d to completion: visited %d, rounds %d, epoch restarts %d, failovers %d",
			res.Epoch, res.Visited, res.Rounds, res.EpochRestarts, res.Failovers)
	case errors.Is(err, coord.ErrFenced):
		cs.deposed = true
		return err
	default:
		log.Printf("coordinator: resuming journaled epoch: %v", err)
	}
	return nil
}

// handleBFS runs one distributed traversal. A deposed coordinator
// answers 409 — callers must move to the coordinator that fenced it.
func (cs *coordServer) handleBFS(w http.ResponseWriter, r *http.Request) {
	var req clusterBFSRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.deposed {
		http.Error(w, "coordinator deposed: a newer coordinator holds the lease", http.StatusConflict)
		return
	}
	if cs.co == nil {
		http.Error(w, "cluster not assembled", http.StatusServiceUnavailable)
		return
	}
	start := time.Now()
	res, err := cs.co.Run(r.Context(), req.Source)
	if err != nil {
		if errors.Is(err, coord.ErrFenced) {
			cs.deposed = true
			log.Printf("coordinator: deposed mid-query: %v", err)
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if errors.Is(err, coord.ErrDiverged) {
			// Replicas answered but disagreed with no quorum to arbitrate:
			// the upstream response is untrustworthy, which is exactly what
			// 502 means. Serving either answer would be a coin flip.
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := clusterBFSResponse{
		Source: res.Source, Visited: res.Visited, Rounds: res.Rounds,
		ClaimedPerRound: res.ClaimedPerRound, Epoch: res.Epoch,
		Incomplete: res.Incomplete, DeadShards: res.DeadShards,
		Retries: res.Retries, EpochRestarts: res.EpochRestarts,
		Failovers: res.Failovers, Divergences: res.Divergences,
		Hedges: res.Hedges, HedgeWins: res.HedgeWins,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if req.IncludeDepth {
		out.Depth = res.Depth
	}
	w.Header().Set("Content-Type", "application/json")
	if res.Incomplete {
		// A degraded answer is typed, not hidden: 206 tells callers
		// the reachable subset excludes dead groups' vertices.
		w.WriteHeader(http.StatusPartialContent)
	}
	json.NewEncoder(w).Encode(&out)
}

func (cs *coordServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	cs.mu.Lock()
	co, deposed := cs.co, cs.deposed
	cs.mu.Unlock()
	switch {
	case deposed:
		http.Error(w, "deposed", http.StatusServiceUnavailable)
	case co == nil:
		http.Error(w, "cluster not assembled", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ok")
	}
}

// handleState serves the journal's accumulated state as concatenated
// length-prefixed frames (lease, assignment, epoch). A standby query
// parameter registers the caller for mirror pushes.
func (cs *coordServer) handleState(w http.ResponseWriter, r *http.Request) {
	if cs.journal == nil {
		http.Error(w, "no state journal (start with -state-dir)", http.StatusServiceUnavailable)
		return
	}
	if sb := r.URL.Query().Get("standby"); sb != "" {
		cs.standbyMu.Lock()
		if cs.standbyURL != sb {
			log.Printf("coordinator: standby registered at %s", sb)
		}
		cs.standbyURL = sb
		cs.standbyMu.Unlock()
	}
	st := cs.journal.State()
	var out []byte
	if st.Lease != nil {
		out = coord.AppendFrame(out, st.Lease.Encode())
	}
	if st.Assignment != nil {
		out = coord.AppendFrame(out, st.Assignment.Encode())
	}
	if st.Epoch != nil {
		out = coord.AppendFrame(out, st.Epoch.Encode())
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// handleMirror accepts one pushed journal record and folds it in; stale
// records are absorbed silently (the fold is monotone).
func (cs *coordServer) handleMirror(w http.ResponseWriter, r *http.Request) {
	if cs.journal == nil {
		http.Error(w, "no state journal", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := cs.journal.Apply(body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintln(w, "ok")
}

// standbyLoop mirrors the active coordinator's journal and takes over
// when its lease expires unrenewed. Returns once promoted (or on ctx
// cancellation).
func (cs *coordServer) standbyLoop(ctx context.Context, cf clusterFlags, inj *faultinject.Plan) {
	poll := cs.leaseTTL / 4
	if poll < 200*time.Millisecond {
		poll = 200 * time.Millisecond
	}
	client := &http.Client{Timeout: 2 * time.Second}
	stateURL := cf.standbyOf + "/cluster/state?standby=" + url.QueryEscape(cs.holder)
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		// Poll the active's state; the query parameter registers us for
		// mirror pushes, so per-round epoch records arrive between polls.
		if resp, err := client.Get(stateURL); err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				if frames, err := coord.SplitFrames(body); err == nil {
					for _, rec := range frames {
						cs.journal.Apply(rec)
					}
				}
			}
		}
		st := cs.journal.State()
		if st.Assignment == nil || st.Lease == nil {
			continue // nothing to take over yet
		}
		now := time.Now().UnixNano()
		if now <= st.Lease.Expires {
			continue
		}
		log.Printf("standby: lease token %d (holder %s) expired %v ago; taking over",
			st.Lease.Token, st.Lease.Holder, time.Duration(now-st.Lease.Expires).Round(time.Millisecond))
		cs.fence = st.Lease.Token + 1
		if err := cs.publishLease(); err != nil {
			log.Printf("standby: publishing takeover lease: %v", err)
			continue
		}
		cfg := clusterCoordConfig(cf, inj)
		cfg.Shards = st.Assignment.URLs
		cfg.Replicas = int(st.Assignment.Replicas)
		if err := cs.activate(ctx, cfg); err != nil {
			if errors.Is(err, coord.ErrFenced) {
				log.Printf("standby: fenced during takeover (an even newer coordinator exists); standing down")
				return
			}
			log.Printf("standby: takeover failed: %v; retrying", err)
			continue
		}
		log.Printf("standby: takeover complete; serving as coordinator (fence %d)", cs.fence)
		go cs.renewLoop(ctx)
		go cs.mirrorPusher(ctx)
		return
	}
}

// clusterCoordConfig builds the coord.Config shared by the active
// coordinator and a promoted standby (everything but the shard set).
func clusterCoordConfig(cf clusterFlags, inj *faultinject.Plan) coord.Config {
	return coord.Config{
		Replicas:          cf.replicas,
		RPCTimeout:        cf.rpcTimeout,
		MaxAttempts:       cf.maxAttempts,
		RecoveryBudget:    cf.recoveryBudget,
		HeartbeatInterval: cf.heartbeat,
		HedgeAfter:        cf.hedgeAfter,
		AuditReplicas:     cf.auditReplicas,
		Backoff:           cluster.Backoff{Base: 25 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: cf.chaosSeed},
		Injector:          inj,
	}
}

// coordInjector builds the coordinator-side chaos plan from the flags.
func coordInjector(cf clusterFlags) *faultinject.Plan {
	rules := map[faultinject.Site]faultinject.Rule{}
	if cf.chaosSendProb > 0 {
		rules[faultinject.SiteCoordSend] = faultinject.Rule{FaultProb: cf.chaosSendProb}
		log.Printf("chaos: dropping %.0f%% of round sends (seed %d)", 100*cf.chaosSendProb, cf.chaosSeed)
	}
	if cf.chaosFailoverProb > 0 {
		rules[faultinject.SiteCoordFailover] = faultinject.Rule{FaultProb: cf.chaosFailoverProb}
		log.Printf("chaos: suppressing %.0f%% of lease renewals (seed %d)", 100*cf.chaosFailoverProb, cf.chaosSeed)
	}
	if cf.chaosDivergeProb > 0 {
		rules[faultinject.SiteCoordDiverge] = faultinject.Rule{FaultProb: cf.chaosDivergeProb}
		log.Printf("chaos: corrupting %.0f%% of received replica responses pre-audit (seed %d)", 100*cf.chaosDivergeProb, cf.chaosSeed)
	}
	if len(rules) == 0 {
		return nil
	}
	return &faultinject.Plan{Seed: cf.chaosSeed, Rules: rules}
}

// runStandbyMode runs a standby coordinator: it mirrors the active's
// journal into its own -state-dir and promotes itself when the lease
// expires, finishing any in-flight epoch from the journaled round
// state. Blocks until SIGINT/SIGTERM.
func runStandbyMode(addr string, cf clusterFlags) error {
	if cf.stateDir == "" {
		return errors.New("-standby-of requires -state-dir for the mirrored journal")
	}
	inj := coordInjector(cf)
	cs := newCoordServer(addr, cf, inj)
	j, err := openCoordJournal(cf.stateDir)
	if err != nil {
		return err
	}
	defer j.Close()
	cs.journal = j
	j.Mirror = cs.mirrorHook // if a further standby registers with us after promotion

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("GET /readyz", cs.handleReadyz)
	mux.HandleFunc("POST /cluster/bfs", cs.handleBFS)
	mux.HandleFunc("GET /cluster/state", cs.handleState)
	mux.HandleFunc("POST /cluster/mirror", cs.handleMirror)

	server := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("standby coordinator listening on %s (watching %s, lease TTL %v)", addr, cf.standbyOf, cs.leaseTTL)
		errCh <- server.ListenAndServe()
	}()

	ctx, stop := signalContext()
	defer stop()
	go cs.standbyLoop(ctx, cf, inj)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return server.Shutdown(sctx)
}
