// Command bfsd is the fastbfs traversal query daemon: it loads one or
// more graphs into memory and serves BFS queries (depth, parent, path,
// reachability) over an HTTP/JSON API, with engine pooling, admission
// control, result caching and batched multi-source execution provided
// by the serve package.
//
// Usage:
//
//	bfsd -addr :8080 -graph social=social.csr -graph roads=roads.csr
//	bfsd -gen rmat -scale 18 -name default
//	bfsd -gen rmat -scale 20 -hybrid   # direction-optimizing engines + sweeps
//
// Query it:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz    # breakers/drain/loading state
//	curl -s -X POST localhost:8080/query \
//	  -d '{"graph":"default","source":0,"targets":[42],"path_to":42}'
//	curl -s -X POST localhost:8080/graphs/load -d '{"name":"roads","path":"roads.csr"}'
//	curl -s -X POST localhost:8080/graphs/unload -d '{"name":"roads"}'
//	curl -s -X POST localhost:8080/graphs/default/index   # build distance index
//	curl -s -X POST localhost:8080/query \
//	  -d '{"graph":"default","source":0,"targets":[42],"distance_only":true}'
//
// With -index (or POST /graphs/{g}/index) the daemon builds a landmark
// distance labeling per graph in the background, batched 64 sources at
// a time with multi-source BFS; distance_only queries it certifies are
// answered in microseconds without a traversal ("index":true,
// "exact":true), everything else falls back to exact BFS. For file
// graphs in durable mode the artifact is persisted next to the graph
// (<path>.idx, CRC-footed) and journaled, so a restart remounts it.
//
// Each graph entering the serving table is auto-tuned by default: a
// short calibration pass prices the paper's analytical model against
// the graph's measured shape and picks the VIS variant, hybrid α/β,
// prefetch distance, batched binning and MS-BFS lane width per graph
// (see the tune package). The profile is journaled with the graph in
// durable mode, so a kill -9 restart reuses it without re-calibrating;
// /stats and /readyz expose the chosen knobs and predicted-vs-measured
// MTEPS. -no-tune (or "tune":false on POST /graphs/load) pins the
// engine defaults instead.
//
// The daemon degrades rather than dies: per-graph circuit breakers
// (-breaker-threshold) fail queries fast while a graph's engines are
// crashing, a watchdog (-watchdog-mult) hard-cancels wedged traversals,
// overload sheds the stalest queued work first, and -max-resident-bytes
// bounds graph memory with LRU eviction of idle graphs.
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503 so load
// balancers stop routing here, new queries are rejected, admitted ones
// finish (up to -draintimeout), then the process exits.
//
// With -state-dir the control plane is durable: every acknowledged
// load/unload (including file graphs given with -graph) is journaled —
// fsync'd before the HTTP 200 — and a restart replays the journal to
// restore the exact pre-crash graph set, tolerating a torn journal
// tail from a mid-write crash. /readyz stays 503 until recovery
// completes. -mmap serves graph files from read-only mappings so a warm
// restart is bounded by page cache rather than re-parsing; results are
// byte-identical and the CRC footer is still verified.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
	"fastbfs/serve"
)

// graphFlags collects repeated -graph name=path (or bare path) values.
type graphFlags []string

func (g *graphFlags) String() string     { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	var graphs graphFlags
	addr := flag.String("addr", ":8080", "listen address")
	flag.Var(&graphs, "graph", "graph to serve, as name=path.csr or path.csr (repeatable)")
	genKind := flag.String("gen", "", "generate a graph instead: ur | rmat")
	name := flag.String("name", "default", "name of the generated graph")
	n := flag.Int("n", 1<<18, "vertices for -gen ur")
	degree := flag.Int("degree", 16, "degree for -gen ur")
	scale := flag.Int("scale", 18, "log2 vertices for -gen rmat")
	edgeFactor := flag.Int("edgefactor", 16, "edge factor for -gen rmat")
	seed := flag.Uint64("seed", 1, "generator seed")
	sockets := flag.Int("sockets", 1, "simulated sockets for pooled engines")
	workers := flag.Int("workers", 0, "traversal workers (0 = GOMAXPROCS)")
	pool := flag.Int("pool", 2, "engines per graph")
	queue := flag.Int("queue", 256, "admission queue bound")
	cache := flag.Int("cache", 32, "cached traversals per graph (negative disables)")
	batchMin := flag.Int("batchmin", 4, "min round size for a multi-source sweep")
	linger := flag.Duration("linger", 0, "dispatcher batching linger (0 = immediate)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-query deadline")
	drainTimeout := flag.Duration("draintimeout", 15*time.Second, "graceful drain bound at shutdown")
	hybrid := flag.Bool("hybrid", false, "direction-optimizing traversal for engines and batched sweeps")
	symmetric := flag.Bool("symmetric", false, "assert served graphs are symmetric (hybrid skips transposes)")
	maxResident := flag.Int64("max-resident-bytes", 0, "resident graph-memory budget; idle graphs are evicted LRU-first (0 = unlimited)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive engine-side failures that open a graph's circuit breaker (negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before a half-open probe is admitted")
	watchdogMult := flag.Int("watchdog-mult", 4, "hard-cancel a traversal after this multiple of its deadline budget (negative disables)")
	shedTarget := flag.Duration("shed-target", 500*time.Millisecond, "queue sojourn past which the oldest queued query is shed under overload (negative disables)")
	stateDir := flag.String("state-dir", "", "durable control plane: journal graph load/unload mutations here and recover them at startup (empty = stateless, restart forgets loaded graphs)")
	snapshotEvery := flag.Int("snapshot-every", serve.DefaultSnapshotEvery, "compact the state-dir journal into a snapshot after this many records")
	mmapLoads := flag.Bool("mmap", false, "load graph files via read-only mmap: warm restarts hit page cache instead of re-parsing (CRC footer still verified)")
	noTune := flag.Bool("no-tune", false, "disable model-driven auto-tuning: serve every graph on the engine defaults instead of calibrating a per-graph profile at load")
	buildIndex := flag.Bool("index", false, "build a landmark distance index for every served graph at startup (background; /query distance_only answers from it)")
	idxLandmarks := flag.Int("index-landmarks", 64, "landmarks per index build")
	idxPolicy := flag.String("index-policy", "degree", "landmark selection policy: degree | random")
	idxSeed := flag.Uint64("index-seed", 1, "seed for the random landmark policy")
	scrubInterval := flag.Duration("scrub-interval", time.Minute, "background integrity scrub period: re-hash every resident graph/index against its CRC footer, quarantining and remounting on mismatch (0 disables)")
	scrubRate := flag.Int64("scrub-rate", 0, "scrub hash throughput cap in bytes/sec so the walk stays low-priority (0 = default 256 MiB/s, negative = unthrottled)")

	var cf clusterFlags
	flag.IntVar(&cf.shardID, "shard-id", -1, "run as cluster shard with this id (requires -shards; see cluster/coord)")
	flag.IntVar(&cf.replicaID, "replica-id", 0, "shard mode: replica index within this shard's group")
	flag.IntVar(&cf.shards, "shards", 0, "total shard-group count of the cluster")
	flag.StringVar(&cf.coordinator, "coordinator", "", "shard mode: register with this coordinator URL (for -coordinate auto)")
	flag.StringVar(&cf.ckptDir, "checkpoint-dir", "", "shard mode: persist per-round checkpoints here for crash recovery")
	flag.StringVar(&cf.coordinate, "coordinate", "", "run as cluster coordinator over these comma-separated shard URLs (group-major with -replicas), or 'auto' to await registrations")
	flag.IntVar(&cf.replicas, "replicas", 1, "coordinator: replicas per shard group; any single replica may die without degrading results")
	flag.StringVar(&cf.standbyOf, "standby-of", "", "run as standby coordinator watching this active coordinator URL (requires -state-dir)")
	flag.DurationVar(&cf.leaseTTL, "lease-ttl", 3*time.Second, "coordinator lease duration; the standby takes over once it expires unrenewed")
	flag.DurationVar(&cf.rpcTimeout, "rpc-timeout", 5*time.Second, "coordinator: per-attempt deadline for shard RPCs")
	flag.DurationVar(&cf.recoveryBudget, "recovery-budget", 15*time.Second, "coordinator: how long a failing shard may stay unreachable before failover/degradation")
	flag.DurationVar(&cf.heartbeat, "heartbeat", 500*time.Millisecond, "coordinator: shard health probe interval")
	flag.IntVar(&cf.maxAttempts, "max-attempts", 4, "coordinator: guaranteed per-round delivery attempts per shard")
	flag.DurationVar(&cf.hedgeAfter, "hedge-after", 0, "coordinator: stop waiting for straggler replicas this long after a round's first valid response (0 = adaptive from observed p99, negative disables hedging)")
	flag.BoolVar(&cf.auditReplicas, "audit-replicas", true, "coordinator: with -replicas >= 2, cross-check replica responses byte-for-byte and serve the quorum answer (diverging replicas are evicted for the epoch)")
	flag.Uint64Var(&cf.chaosSeed, "chaos-seed", 1, "seed for deterministic cluster fault injection")
	flag.Float64Var(&cf.chaosSendProb, "chaos-send-prob", 0, "coordinator: inject this fraction of lost round sends")
	flag.Float64Var(&cf.chaosExpandProb, "chaos-expand-prob", 0, "shard: fail this fraction of expand rounds")
	flag.DurationVar(&cf.chaosExpandDelay, "chaos-expand-delay", 0, "shard: delay every expand round by up to this duration (slows queries so crash harnesses can kill mid-epoch)")
	flag.Float64Var(&cf.chaosFailoverProb, "chaos-failover-prob", 0, "coordinator: suppress this fraction of lease renewals (forces standby takeover while alive)")
	flag.Float64Var(&cf.chaosDivergeProb, "chaos-diverge-prob", 0, "coordinator: corrupt this fraction of received replica responses before auditing (exercises quorum outvoting)")
	flag.DurationVar(&cf.chaosStallDelay, "chaos-stall-delay", 0, "shard: stall every expand round by up to this duration while heartbeats stay healthy (gray failure; exercises hedging)")
	flag.Parse()
	cf.stateDir = *stateDir

	if cf.standbyOf != "" {
		if err := runStandbyMode(*addr, cf); err != nil {
			log.Fatalf("bfsd: %v", err)
		}
		return
	}
	if cf.coordinate != "" {
		if err := runCoordinatorMode(*addr, cf); err != nil {
			log.Fatalf("bfsd: %v", err)
		}
		return
	}
	if cf.shardID >= 0 {
		g, err := loadClusterGraph(graphs, *genKind, *n, *degree, *scale, *edgeFactor, *seed, *mmapLoads)
		if err != nil {
			log.Fatalf("bfsd: %v", err)
		}
		if err := runShardMode(*addr, cf, g); err != nil {
			log.Fatalf("bfsd: %v", err)
		}
		return
	}

	opts := bfs.Default(*sockets)
	opts.Workers = *workers
	opts.Hybrid = *hybrid
	opts.Symmetric = *symmetric
	svc := serve.New(serve.Config{
		PoolSize:       *pool,
		MaxQueue:       *queue,
		CacheEntries:   *cache,
		BatchThreshold: *batchMin,
		BatchLinger:    *linger,
		DefaultTimeout: *timeout,
		Workers:        *workers,
		Options:        &opts,

		MaxResidentBytes: *maxResident,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		WatchdogMult:     *watchdogMult,
		ShedTarget:       *shedTarget,
		StateDir:         *stateDir,
		SnapshotEvery:    *snapshotEvery,
		MmapLoads:        *mmapLoads,
		AutoTune:         !*noTune,
		ScrubInterval:    *scrubInterval,
		ScrubRate:        *scrubRate,
		Logf:             log.Printf,
	})

	// The listener comes up before recovery so /readyz is observable
	// (503) while the journal replays; load balancers route only after
	// the pre-crash graph set is back.
	server := &http.Server{Addr: *addr, Handler: serve.NewHandler(svc)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- server.ListenAndServe()
	}()

	if *stateDir != "" {
		sum, err := svc.Recover()
		if err != nil {
			log.Fatalf("bfsd: recovering state dir %s: %v", *stateDir, err)
		}
		log.Printf("recovered %d graph(s) from %s in %v (journal seq %d, %d records since snapshot)",
			len(sum.Graphs), *stateDir, sum.Duration.Round(time.Millisecond), sum.Journal.Seq, sum.Journal.Records)
		for _, name := range sum.Failed {
			log.Printf("WARNING: journaled graph %q could not be reloaded; serving without it", name)
		}
		for _, name := range sum.Indexes {
			log.Printf("remounted distance index for graph %q", name)
		}
		for _, name := range sum.IndexesRebuilding {
			log.Printf("journaled index artifact for %q unusable; rebuilding in background", name)
		}
		if sum.Journal.TornBytes > 0 {
			log.Printf("journal tail was torn: truncated %d bytes (crash mid-append)", sum.Journal.TornBytes)
		}
	}

	if err := loadGraphs(svc, graphs, *genKind, *name, *n, *degree, *scale, *edgeFactor, *seed, *stateDir != ""); err != nil {
		log.Fatalf("bfsd: %v", err)
	}
	for _, gi := range svc.Graphs() {
		log.Printf("serving graph %q: %d vertices, %d edges (mapped=%v)", gi.Name, gi.Vertices, gi.Edges, gi.Mapped)
	}
	if *buildIndex {
		// Background builds; a remounted (recovered) index is kept as-is
		// since BuildIndex without Force is a no-op on a ready index, and
		// a recovery-triggered rebuild already in flight reports busy.
		for _, gi := range svc.Graphs() {
			_, err := svc.BuildIndex(gi.Name, serve.IndexOptions{
				Landmarks: *idxLandmarks, Policy: *idxPolicy, Seed: *idxSeed,
			})
			switch {
			case err == nil:
				log.Printf("building distance index for graph %q (%d landmarks, %s policy)",
					gi.Name, *idxLandmarks, *idxPolicy)
			case errors.Is(err, serve.ErrIndexBusy):
			default:
				log.Printf("WARNING: index build for %q not started: %v", gi.Name, err)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("bfsd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("draining (up to %v)...", *drainTimeout)
	svc.BeginDrain() // healthz → 503 immediately, before the listener closes
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Shutdown(dctx); err != nil {
		log.Printf("bfsd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("bfsd: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}

// loadGraphs registers every -graph file and/or the generated graph.
// File graphs go through the service's load path, so -mmap applies and,
// in durable mode, they are journaled like any other load (a restart
// without the flags still serves them). Generated graphs have no file
// to reload from and stay in-memory only.
func loadGraphs(svc *serve.Service, graphs graphFlags, genKind, name string, n, degree, scale, edgeFactor int, seed uint64, durable bool) error {
	for _, spec := range graphs {
		gname, path, ok := strings.Cut(spec, "=")
		if !ok {
			path = spec
			gname = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		if _, err := svc.LoadGraph(gname, path); err != nil {
			return fmt.Errorf("loading %q: %w", path, err)
		}
	}
	switch genKind {
	case "":
	case "ur":
		g, err := gen.UniformRandom(n, degree, seed)
		if err != nil {
			return err
		}
		if err := svc.AddGraph(name, g); err != nil {
			return err
		}
	case "rmat":
		g, err := gen.RMAT(gen.Graph500Params(scale, edgeFactor), seed)
		if err != nil {
			return err
		}
		if err := svc.AddGraph(name, g); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -gen kind %q", genKind)
	}
	if len(svc.Graphs()) == 0 {
		if durable {
			// A durable daemon may legitimately cold-boot empty and be
			// populated through POST /graphs/load.
			log.Printf("no graphs yet; load them via POST /graphs/load")
			return nil
		}
		return errors.New("no graphs: pass -graph and/or -gen")
	}
	return nil
}
