//go:build unix

package main

// Process-level silent-fault smoke: the serving daemon's background
// scrubber quarantining and healing a bit-flipped mmap'd artifact with
// no corrupted answer ever served, and a replicated cluster outvoting
// deterministically injected divergent replica responses while staying
// depth-exact. The CI scrub-smoke job runs these at scale 14 under
// -race.

import (
	"encoding/json"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"fastbfs/graph/gen"
	"fastbfs/internal/faultinject"
)

// flipFileByte XORs one byte of an artifact in place — bit rot, as dd
// would inflict it.
func flipFileByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// readyzState decodes /readyz regardless of its status code.
func readyzState(t *testing.T, d *daemon) (ready bool, quarantined bool, scrubErr string) {
	t.Helper()
	resp, err := http.Get(d.url("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs struct {
		Ready  bool `json:"ready"`
		Graphs []struct {
			Quarantined bool   `json:"quarantined"`
			ScrubError  string `json:"scrub_error"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	for _, g := range rs.Graphs {
		if g.Quarantined {
			return rs.Ready, true, g.ScrubError
		}
	}
	return rs.Ready, false, ""
}

// TestServeScrubQuarantineHeal: a byte of a served mmap'd graph
// artifact is flipped on disk behind the daemon's back. Within one
// scrub interval the daemon must quarantine the graph (readyz down,
// queries refused — never answered from the corrupt bytes) and, once
// the file heals in place, lift the quarantine on its own.
func TestServeScrubQuarantineHeal(t *testing.T) {
	grid, err := gen.Grid2D(64, 64, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := saveGraphFile(t, grid, t.TempDir(), "grid.csr")
	d := startDaemon(t, "-scrub-interval", "100ms", "-state-dir", t.TempDir())
	d.waitReady(t)
	d.loadGraph(t, "g", path, true)
	want := d.allDepths(t, "g", 0)

	// Flip the last payload byte: the 12-byte CRC footer after it still
	// records what the bytes should hash to.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	off := st.Size() - 13
	flipFileByte(t, path, off)

	deadline := time.Now().Add(15 * time.Second)
	for {
		ready, quarantined, scrubErr := readyzState(t, d)
		if quarantined {
			if ready {
				t.Fatalf("daemon still ready while its only graph is quarantined; logs:\n%s", d.logs)
			}
			if scrubErr == "" {
				t.Fatal("quarantined graph reports no scrub error detail")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("corrupt artifact never quarantined; logs:\n%s", d.logs)
		}
		time.Sleep(25 * time.Millisecond)
	}
	req := map[string]any{"graph": "g", "source": 0, "all_depths": true}
	if code := d.postJSON(t, "/query", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("query on quarantined graph: HTTP %d, want 503", code)
	}

	// Heal the artifact in place; the mmap aliases it, so the next pass
	// verifies clean and reopens the graph without a restart.
	flipFileByte(t, path, off)
	deadline = time.Now().Add(15 * time.Second)
	for {
		ready, quarantined, _ := readyzState(t, d)
		if ready && !quarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed artifact never lifted the quarantine; logs:\n%s", d.logs)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := d.allDepths(t, "g", 0); !reflect.DeepEqual(got, want) {
		t.Fatal("depths after quarantine recovery differ from pre-corruption depths")
	}
}

// TestClusterAuditOutvotesDivergence: a 2x3 replicated process cluster
// under deterministic response corruption (-chaos-diverge-prob) must
// detect every divergent reply, outvote it, and still answer with
// exactly the serial depths. The seed is scanned so corruption stays a
// per-group minority — the audit always has an honest quorum.
func TestClusterAuditOutvotesDivergence(t *testing.T) {
	const groups, replicas = 2, 3
	const prob = 0.02
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	want := serialClusterDepths(t, g, 1)
	maxDepth := int32(0)
	for _, dth := range want {
		if dth > maxDepth {
			maxDepth = dth
		}
	}
	// Rounds 0..maxDepth+1 can carry expansions; require one corrupt
	// reply inside the traversal and confine each group's firings to a
	// single replica over a generous horizon (the first divergence
	// evicts that replica, so the surviving majority stays unanimous).
	maxRound := uint32(maxDepth) + 4
	needBy := uint32(maxDepth)
	seed := uint64(0)
	for s := uint64(1); seed == 0 && s < 200000; s++ {
		p := &faultinject.Plan{Seed: s, Rules: map[faultinject.Site]faultinject.Rule{
			faultinject.SiteCoordDiverge: {FaultProb: prob},
		}}
		early := false
		ok := true
		for gid := 0; gid < groups && ok; gid++ {
			liar := -1
			for r := uint32(0); r < maxRound && ok; r++ {
				for rep := 0; rep < replicas; rep++ {
					u := gid*replicas + rep
					if !p.Decide(faultinject.SiteCoordDiverge, uint64(u)<<32|uint64(r)).Fault() {
						continue
					}
					if liar == -1 {
						liar = rep
					}
					if rep != liar {
						ok = false
						break
					}
					if r < needBy {
						early = true
					}
				}
			}
		}
		if ok && early {
			seed = s
		}
	}
	if seed == 0 {
		t.Fatal("no usable divergence seed found")
	}

	co, _ := startReplicaCluster(t, groups, replicas, scale, nil,
		"-chaos-diverge-prob", strconv.FormatFloat(prob, 'f', -1, 64),
		"-chaos-seed", strconv.FormatUint(seed, 10))
	res, code := clusterBFS(t, co, 1, true)
	if code != http.StatusOK {
		t.Fatalf("cluster BFS: HTTP %d, want 200; logs:\n%s", code, co.logs)
	}
	assertClusterExact(t, res, want)
	if res.Divergences == 0 {
		t.Fatalf("injected corrupt replica responses but none were detected; logs:\n%s", co.logs)
	}
}
