//go:build unix

package main

// Process-level cluster harness: these tests build the real bfsd
// binary, launch a coordinator plus three shard processes, and drive
// distributed BFS queries against serially computed ground truth —
// including SIGKILLing a shard mid-query-stream and asserting the
// checkpointed restart converges back to exact depths, and a
// permanently dead shard degrading to a typed partial result.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"fastbfs/bfs"
	"fastbfs/cluster/coord"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

// clusterScale is the RMAT scale the cluster tests run at; the CI
// cluster-smoke job raises it to 14 via BFSD_CLUSTER_SCALE.
func clusterScale(t *testing.T) int {
	if s := os.Getenv("BFSD_CLUSTER_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("BFSD_CLUSTER_SCALE=%q: %v", s, err)
		}
		return v
	}
	return 10
}

const clusterSeed = 5

// clusterGraph regenerates the exact graph the shard processes build
// from the matching -gen flags.
func clusterGraph(t *testing.T, scale int) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.Graph500Params(scale, 16), clusterSeed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func serialClusterDepths(t *testing.T, g *graph.Graph, source uint32) []int32 {
	t.Helper()
	r, err := bfs.RunSerial(g, source)
	if err != nil {
		t.Fatal(err)
	}
	depth := make([]int32, g.NumVertices())
	for v := range depth {
		depth[v] = r.Depth(uint32(v))
	}
	return depth
}

// startShard launches one bfsd shard process on addr (reusing a port
// pins a restarted shard to its old identity).
func startShard(t *testing.T, addr string, id, shards, scale int, ckptDir string, extra ...string) *daemon {
	t.Helper()
	d := &daemon{addr: addr, logs: &bytes.Buffer{}}
	args := []string{
		"-addr", d.addr,
		"-shard-id", strconv.Itoa(id), "-shards", strconv.Itoa(shards),
		"-gen", "rmat", "-scale", strconv.Itoa(scale), "-edgefactor", "16", "-seed", strconv.Itoa(clusterSeed),
	}
	if ckptDir != "" {
		args = append(args, "-checkpoint-dir", ckptDir)
	}
	d.cmd = exec.Command(bfsdBin, append(args, extra...)...)
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_, _ = d.cmd.Process.Wait()
		}
	})
	return d
}

// startCluster brings up nshards shard processes plus a coordinator and
// waits until the cluster is assembled. ckptDirs may be nil.
func startCluster(t *testing.T, nshards, scale int, ckptDirs []string, coordArgs ...string) (*daemon, []*daemon) {
	t.Helper()
	shards := make([]*daemon, nshards)
	urls := ""
	for i := range shards {
		dir := ""
		if ckptDirs != nil {
			dir = ckptDirs[i]
		}
		shards[i] = startShard(t, freePort(t), i, nshards, scale, dir)
		if i > 0 {
			urls += ","
		}
		urls += "http://" + shards[i].addr
	}
	for _, s := range shards {
		s.waitReady(t)
	}
	co := startDaemon(t, append([]string{"-coordinate", urls}, coordArgs...)...)
	co.waitReady(t)
	return co, shards
}

// clusterBFS posts one query and decodes the reply; 206 (degraded) is
// returned alongside the response, any other non-200 fails the test.
func clusterBFS(t *testing.T, co *daemon, source uint32, includeDepth bool) (*clusterBFSResponse, int) {
	t.Helper()
	body, _ := json.Marshal(clusterBFSRequest{Source: source, IncludeDepth: includeDepth})
	resp, err := http.Post(co.url("/cluster/bfs"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /cluster/bfs: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("POST /cluster/bfs: HTTP %d: %s\ncoordinator logs:\n%s", resp.StatusCode, raw, co.logs)
	}
	var out clusterBFSResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return &out, resp.StatusCode
}

func assertClusterExact(t *testing.T, res *clusterBFSResponse, want []int32) {
	t.Helper()
	if res.Incomplete {
		t.Fatalf("healthy cluster returned incomplete result (dead shards %v)", res.DeadShards)
	}
	if len(res.Depth) != len(want) {
		t.Fatalf("response depth covers %d vertices, want %d", len(res.Depth), len(want))
	}
	for v := range want {
		if res.Depth[v] != want[v] {
			t.Fatalf("vertex %d: distributed depth %d, serial depth %d", v, res.Depth[v], want[v])
		}
	}
}

// TestClusterExactDepths: a real 3-process cluster answers with exactly
// the serial BFS depths, level sizes included, for multiple sources —
// and stays exact when the coordinator's send path drops a fifth of its
// round messages (deterministic chaos).
func TestClusterExactDepths(t *testing.T) {
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	co, _ := startCluster(t, 3, scale, nil)
	for _, source := range []uint32{0, 2} {
		want := serialClusterDepths(t, g, source)
		res, status := clusterBFS(t, co, source, true)
		if status != http.StatusOK {
			t.Fatalf("healthy query: HTTP %d", status)
		}
		assertClusterExact(t, res, want)
		var levels []int64
		for _, d := range want {
			if d >= 0 {
				for int(d) >= len(levels) {
					levels = append(levels, 0)
				}
				levels[d]++
			}
		}
		if len(res.ClaimedPerRound) != len(levels) {
			t.Fatalf("source %d: %d claiming rounds, serial BFS has %d levels", source, len(res.ClaimedPerRound), len(levels))
		}
		for r, n := range levels {
			if res.ClaimedPerRound[r] != n {
				t.Fatalf("source %d round %d: claimed %d, serial level size %d", source, r, res.ClaimedPerRound[r], n)
			}
		}
	}

	t.Run("chaotic-send", func(t *testing.T) {
		coChaos, _ := startCluster(t, 3, scale, nil,
			"-chaos-send-prob", "0.2", "-chaos-seed", "99", "-max-attempts", "8")
		want := serialClusterDepths(t, g, 1)
		res, _ := clusterBFS(t, coChaos, 1, true)
		assertClusterExact(t, res, want)
		if res.Retries == 0 {
			t.Fatal("chaos plan produced no retries; injection is not reaching the send path")
		}
	})
}

// TestClusterShardSIGKILLRecovery: while a stream of queries runs, one
// shard is SIGKILLed and relaunched (same port, same checkpoint dir).
// Every query that completes must carry exact depths — the protocol may
// retry or restart epochs, but it must never serve a wrong or partial
// answer for a shard that comes back inside the recovery budget.
func TestClusterShardSIGKILLRecovery(t *testing.T) {
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	want := serialClusterDepths(t, g, 0)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	co, shards := startCluster(t, 3, scale, dirs,
		"-recovery-budget", "30s", "-heartbeat", "50ms")

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		mu         sync.Mutex
		queries    int
		recoveries int
		failure    error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, status := clusterBFSNoFatal(co, 0)
			mu.Lock()
			queries++
			switch {
			case res == nil:
				failure = fmt.Errorf("query failed with HTTP %d", status)
			case res.Incomplete:
				failure = fmt.Errorf("query degraded (dead shards %v) though the shard came back in budget", res.DeadShards)
			default:
				for v := range want {
					if res.Depth[v] != want[v] {
						failure = fmt.Errorf("vertex %d: depth %d after recovery, serial %d", v, res.Depth[v], want[v])
						break
					}
				}
				if res.Retries > 0 || res.EpochRestarts > 0 {
					recoveries++
				}
			}
			done := failure != nil
			mu.Unlock()
			if done {
				return
			}
		}
	}()

	// Let at least one healthy query land, then SIGKILL shard 1 mid-
	// stream, leave it dead long enough for in-flight rounds to start
	// retrying, and relaunch it from its checkpoint directory.
	time.Sleep(150 * time.Millisecond)
	victim := shards[1]
	victim.kill(t)
	time.Sleep(400 * time.Millisecond)
	reborn := startShard(t, victim.addr, 1, 3, scale, dirs[1])
	reborn.waitReady(t)

	// Give the stream time to push queries through the recovered
	// cluster, then stop it.
	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if failure != nil {
		t.Fatalf("%v\ncoordinator logs:\n%s\nvictim logs:\n%s", failure, co.logs, victim.logs)
	}
	if queries < 2 {
		t.Fatalf("only %d queries completed; stream never straddled the crash", queries)
	}
	if recoveries == 0 {
		t.Fatalf("none of %d queries observed retries or epoch restarts; the kill was invisible (logs:\n%s)", queries, co.logs)
	}
	t.Logf("%d queries, %d saw recovery machinery engage", queries, recoveries)
}

// clusterBFSNoFatal is clusterBFS for goroutines: returns nil on any
// transport or status failure instead of failing the test.
func clusterBFSNoFatal(co *daemon, source uint32) (*clusterBFSResponse, int) {
	body, _ := json.Marshal(clusterBFSRequest{Source: source, IncludeDepth: true})
	resp, err := http.Post(co.url("/cluster/bfs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent) {
		return nil, resp.StatusCode
	}
	var out clusterBFSResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, resp.StatusCode
	}
	return &out, resp.StatusCode
}

// TestClusterDegradedPartialResult: a shard SIGKILLed and never
// relaunched must not hang the cluster — past the recovery budget the
// query returns HTTP 206 with the dead shard named and its vertex range
// unreached, while the surviving shards' depths remain sound.
func TestClusterDegradedPartialResult(t *testing.T) {
	scale := clusterScale(t)
	g := clusterGraph(t, scale)
	serial := serialClusterDepths(t, g, 0)
	co, shards := startCluster(t, 3, scale, nil,
		"-recovery-budget", "500ms", "-max-attempts", "2", "-heartbeat", "50ms")

	res, status := clusterBFS(t, co, 0, true) // healthy baseline
	if status != http.StatusOK || res.Incomplete {
		t.Fatalf("baseline query: HTTP %d, incomplete=%v", status, res.Incomplete)
	}

	shards[2].kill(t)
	start := time.Now()
	res, status = clusterBFS(t, co, 0, true)
	if status != http.StatusPartialContent {
		t.Fatalf("degraded query returned HTTP %d, want 206", status)
	}
	if !res.Incomplete || len(res.DeadShards) != 1 || res.DeadShards[0] != 2 {
		t.Fatalf("degraded response: incomplete=%v dead=%v, want incomplete with shard 2 dead", res.Incomplete, res.DeadShards)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("degraded query took %v; the recovery budget is not bounding it", elapsed)
	}
	lo, hi := coord.PartitionRange(g.NumVertices(), 3, 2)
	for v := lo; v < hi; v++ {
		if res.Depth[v] != -1 {
			t.Fatalf("vertex %d in dead shard's range has depth %d, want -1", v, res.Depth[v])
		}
	}
	if res.Depth[0] != 0 {
		t.Fatalf("source depth %d in degraded result", res.Depth[0])
	}
	for v, d := range res.Depth {
		if d >= 0 && (serial[v] < 0 || d < serial[v]) {
			t.Fatalf("vertex %d: degraded depth %d beats serial %d", v, d, serial[v])
		}
	}
	if res.Visited == 0 || res.Visited >= int64(g.NumVertices()) {
		t.Fatalf("degraded run visited %d of %d vertices; expected a proper subset", res.Visited, g.NumVertices())
	}
}
