// Command bfsrun traverses a graph (loaded from a CSR file written by
// graphgen, or generated on the fly) and reports traversal rate,
// per-step metrics and validation status.
//
// Usage:
//
//	bfsrun -graph rmat.csr -source 0 -sockets 2
//	bfsrun -gen rmat -scale 18 -edgefactor 16 -trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/stats"
)

func main() {
	path := flag.String("graph", "", "CSR graph file (from graphgen)")
	genKind := flag.String("gen", "", "generate instead: ur | rmat")
	n := flag.Int("n", 1<<18, "vertices for -gen ur")
	degree := flag.Int("degree", 16, "degree for -gen ur")
	scale := flag.Int("scale", 18, "log2 vertices for -gen rmat")
	edgeFactor := flag.Int("edgefactor", 16, "edge factor for -gen rmat")
	seed := flag.Uint64("seed", 1, "generator seed")
	source := flag.Int("source", -1, "starting vertex (-1 = best of 8 probes)")
	sockets := flag.Int("sockets", 2, "simulated sockets (power of two)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	visFlag := flag.String("vis", "partitioned", "none | atomic | byte | bit | partitioned")
	schemeFlag := flag.String("scheme", "lb", "single | aware | lb")
	serial := flag.Bool("serial", false, "also run the serial reference")
	doValidate := flag.Bool("validate", true, "validate the BFS tree")
	doTrace := flag.Bool("trace", false, "print per-step metrics")
	csvPath := flag.String("csv", "", "write per-step metrics as CSV to this file (implies -trace)")
	timeout := flag.Duration("timeout", 0, "abort the traversal after this duration (0 = no limit)")
	flag.Parse()
	if *csvPath != "" {
		*doTrace = true
	}

	g, err := loadOrGen(*path, *genKind, *n, *degree, *scale, *edgeFactor, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s\n", graph.ComputeStats(g))

	src := uint32(0)
	if *source >= 0 {
		src = uint32(*source)
	} else {
		src, _ = graph.LargestReach(g, 8)
	}

	vis := map[string]bfs.VISKind{
		"none": bfs.VISNone, "atomic": bfs.VISAtomicBit, "byte": bfs.VISByte,
		"bit": bfs.VISBit, "partitioned": bfs.VISPartitioned,
	}[*visFlag]
	scheme := map[string]bfs.Scheme{
		"single": bfs.SchemeSinglePhase, "aware": bfs.SchemeSocketAware,
		"lb": bfs.SchemeLoadBalanced,
	}[*schemeFlag]

	o := bfs.Default(*sockets)
	o.VIS = vis
	o.Scheme = scheme
	o.Workers = *workers
	o.Instrument = *doTrace

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := bfs.RunContext(ctx, g, src, o)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "bfsrun: traversal exceeded -timeout %v\n", *timeout)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("source %d: visited %s vertices, traversed %s edges in %d steps\n",
		src, stats.HumanCount(res.Visited), stats.HumanCount(res.EdgesTraversed), res.Steps)
	fmt.Printf("elapsed %v  =>  %.1f MTEPS (duplicate work: %d appends)\n",
		res.Elapsed, res.MTEPS(), res.Appends-res.Visited)

	if *doTrace && res.Trace != nil {
		t := stats.NewTable("step", "frontier", "edges", "new", "pbv", "shared", "maxShare", "t1", "t2", "tR")
		for _, s := range res.Trace.Steps {
			t.AddRow(s.Step, s.Frontier, s.Edges, s.NewVertices, s.PBVEntries,
				s.SharedBins, s.MaxSocketShare, s.Phase1.String(), s.Phase2.String(), s.Rearr.String())
		}
		t.Render(os.Stdout)
	}

	if *csvPath != "" && res.Trace != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
			os.Exit(1)
		}
		if err := res.Trace.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: writing CSV: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("per-step metrics written to %s\n", *csvPath)
	}

	if *serial {
		ref, err := bfs.RunSerial(g, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: serial: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serial: %v => %.1f MTEPS (parallel speedup %.2fx)\n",
			ref.Elapsed, ref.MTEPS(), res.MTEPS()/ref.MTEPS())
	}

	if *doValidate {
		if err := bfs.Validate(g, res); err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("validation: OK (valid BFS tree, depths match serial reference)")
	}
}

func loadOrGen(path, kind string, n, degree, scale, edgeFactor int, seed uint64) (*graph.Graph, error) {
	switch {
	case path != "":
		return graph.Load(path)
	case kind == "ur":
		return gen.UniformRandom(n, degree, seed)
	case kind == "rmat":
		return gen.RMAT(gen.Graph500Params(scale, edgeFactor), seed)
	case kind == "":
		return nil, fmt.Errorf("either -graph or -gen is required")
	default:
		return nil, fmt.Errorf("unknown -gen kind %q", kind)
	}
}
