// Command bfsrun traverses a graph (loaded from a CSR file written by
// graphgen, or generated on the fly) and reports traversal rate,
// per-step metrics and validation status.
//
// Usage:
//
//	bfsrun -graph rmat.csr -source 0 -sockets 2
//	bfsrun -gen rmat -scale 18 -edgefactor 16 -trace
//	bfsrun -gen rmat -sources 0,17,4242 -serial=false
//	bfsrun -gen rmat -scale 20 -hybrid            # direction-optimizing
//	bfsrun -graph road.csr -hybrid -alpha 100     # eager switch-down
//
// With -sources, one engine is reused across every source (the serving
// pattern): per-source and aggregate MTEPS are reported, and
// -trace/-csv are ignored.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/stats"
)

func main() {
	path := flag.String("graph", "", "CSR graph file (from graphgen)")
	genKind := flag.String("gen", "", "generate instead: ur | rmat")
	n := flag.Int("n", 1<<18, "vertices for -gen ur")
	degree := flag.Int("degree", 16, "degree for -gen ur")
	scale := flag.Int("scale", 18, "log2 vertices for -gen rmat")
	edgeFactor := flag.Int("edgefactor", 16, "edge factor for -gen rmat")
	seed := flag.Uint64("seed", 1, "generator seed")
	source := flag.Int("source", -1, "starting vertex (-1 = best of 8 probes)")
	sourcesFlag := flag.String("sources", "", "comma-separated sources; one engine is reused across all of them")
	sockets := flag.Int("sockets", 2, "simulated sockets (power of two)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	visFlag := flag.String("vis", "partitioned", "none | atomic | byte | bit | partitioned")
	schemeFlag := flag.String("scheme", "lb", "single | aware | lb")
	hybrid := flag.Bool("hybrid", false, "direction-optimizing traversal (bottom-up heavy levels)")
	alpha := flag.Float64("alpha", 0, "hybrid switch-down threshold (0 = default)")
	beta := flag.Float64("beta", 0, "hybrid switch-back threshold (0 = default)")
	symmetric := flag.Bool("symmetric", false, "assert the graph is symmetric (hybrid skips the transpose)")
	serial := flag.Bool("serial", false, "also run the serial reference")
	doValidate := flag.Bool("validate", true, "validate the BFS tree")
	doTrace := flag.Bool("trace", false, "print per-step metrics")
	csvPath := flag.String("csv", "", "write per-step metrics as CSV to this file (implies -trace)")
	timeout := flag.Duration("timeout", 0, "abort the traversal after this duration (0 = no limit)")
	flag.Parse()
	if *csvPath != "" {
		*doTrace = true
	}

	g, err := loadOrGen(*path, *genKind, *n, *degree, *scale, *edgeFactor, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s\n", graph.ComputeStats(g))

	src := uint32(0)
	if *source >= 0 {
		src = uint32(*source)
	} else {
		src, _ = graph.LargestReach(g, 8)
	}

	vis := map[string]bfs.VISKind{
		"none": bfs.VISNone, "atomic": bfs.VISAtomicBit, "byte": bfs.VISByte,
		"bit": bfs.VISBit, "partitioned": bfs.VISPartitioned,
	}[*visFlag]
	scheme := map[string]bfs.Scheme{
		"single": bfs.SchemeSinglePhase, "aware": bfs.SchemeSocketAware,
		"lb": bfs.SchemeLoadBalanced,
	}[*schemeFlag]

	o := bfs.Default(*sockets)
	o.VIS = vis
	o.Scheme = scheme
	o.Workers = *workers
	o.Instrument = *doTrace
	o.Hybrid = *hybrid
	o.Alpha, o.Beta = *alpha, *beta
	o.Symmetric = *symmetric

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sourcesFlag != "" {
		runSources(ctx, g, o, *sourcesFlag, *doValidate, *timeout)
		return
	}

	res, err := bfs.RunContext(ctx, g, src, o)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "bfsrun: traversal exceeded -timeout %v\n", *timeout)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("source %d: visited %s vertices, traversed %s edges in %d steps\n",
		src, stats.HumanCount(res.Visited), stats.HumanCount(res.EdgesTraversed), res.Steps)
	fmt.Printf("elapsed %v  =>  %.1f MTEPS (duplicate work: %d appends)\n",
		res.Elapsed, res.MTEPS(), res.Appends-res.Visited)
	if len(res.Directions) > 0 {
		fmt.Printf("directions: %s\n", bfs.DirectionString(res.Directions))
	}

	if *doTrace && res.Trace != nil {
		t := stats.NewTable("step", "frontier", "edges", "new", "pbv", "shared", "maxShare", "t1", "t2", "tR")
		for _, s := range res.Trace.Steps {
			t.AddRow(s.Step, s.Frontier, s.Edges, s.NewVertices, s.PBVEntries,
				s.SharedBins, s.MaxSocketShare, s.Phase1.String(), s.Phase2.String(), s.Rearr.String())
		}
		t.Render(os.Stdout)
	}

	if *csvPath != "" && res.Trace != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
			os.Exit(1)
		}
		if err := res.Trace.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: writing CSV: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("per-step metrics written to %s\n", *csvPath)
	}

	if *serial {
		ref, err := bfs.RunSerial(g, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: serial: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serial: %v => %.1f MTEPS (parallel speedup %.2fx)\n",
			ref.Elapsed, ref.MTEPS(), res.MTEPS()/ref.MTEPS())
	}

	if *doValidate {
		if err := bfs.Validate(g, res); err != nil {
			fmt.Fprintf(os.Stderr, "bfsrun: VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("validation: OK (valid BFS tree, depths match serial reference)")
	}
}

// runSources reuses ONE engine across a comma-separated source list —
// the serving pattern, where engine construction is paid once — and
// reports per-source and aggregate traversal rates.
func runSources(ctx context.Context, g *graph.Graph, o bfs.Options, list string, doValidate bool, timeout time.Duration) {
	var sources []uint32
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil || int(v) >= g.NumVertices() {
			fmt.Fprintf(os.Stderr, "bfsrun: bad source %q in -sources\n", part)
			os.Exit(1)
		}
		sources = append(sources, uint32(v))
	}

	buildStart := time.Now()
	e, err := bfs.NewEngine(g, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("engine built once in %v, reused for %d sources\n",
		time.Since(buildStart).Round(time.Microsecond), len(sources))

	var totEdges, totVisited int64
	var totElapsed time.Duration
	for _, src := range sources {
		res, err := e.RunContext(ctx, src)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "bfsrun: traversal exceeded -timeout %v\n", timeout)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "bfsrun: source %d: %v\n", src, err)
			os.Exit(1)
		}
		fmt.Printf("source %8d: visited %8s  edges %9s  steps %3d  %10v  %8.1f MTEPS\n",
			src, stats.HumanCount(res.Visited), stats.HumanCount(res.EdgesTraversed),
			res.Steps, res.Elapsed.Round(time.Microsecond), res.MTEPS())
		if doValidate {
			if err := bfs.Validate(g, res); err != nil {
				fmt.Fprintf(os.Stderr, "bfsrun: source %d: VALIDATION FAILED: %v\n", src, err)
				os.Exit(1)
			}
		}
		totEdges += res.EdgesTraversed
		totVisited += res.Visited
		totElapsed += res.Elapsed
	}
	agg := 0.0
	if s := totElapsed.Seconds(); s > 0 {
		agg = float64(totEdges) / s / 1e6
	}
	fmt.Printf("aggregate: %d sources, visited %s, traversed %s in %v  =>  %.1f MTEPS\n",
		len(sources), stats.HumanCount(totVisited), stats.HumanCount(totEdges),
		totElapsed.Round(time.Microsecond), agg)
	if doValidate {
		fmt.Println("validation: OK (all sources, valid BFS trees matching serial reference)")
	}
}

func loadOrGen(path, kind string, n, degree, scale, edgeFactor int, seed uint64) (*graph.Graph, error) {
	switch {
	case path != "":
		return graph.Load(path)
	case kind == "ur":
		return gen.UniformRandom(n, degree, seed)
	case kind == "rmat":
		return gen.RMAT(gen.Graph500Params(scale, edgeFactor), seed)
	case kind == "":
		return nil, fmt.Errorf("either -graph or -gen is required")
	default:
		return nil, fmt.Errorf("unknown -gen kind %q", kind)
	}
}
