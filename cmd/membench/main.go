// Command membench measures this host's memory characteristics the way
// the paper's Table I was produced (Molka-style streaming and
// pointer-chase microbenchmarks) and prints a model.Platform snippet so
// the analytical model can be calibrated to machines other than the
// paper's Nehalem.
//
// Usage:
//
//	membench [-mb 256] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"fastbfs/internal/membw"
	"fastbfs/internal/stats"
)

func main() {
	mb := flag.Int("mb", 256, "DRAM working-set size in MiB")
	workers := flag.Int("workers", 0, "parallel streams (0 = GOMAXPROCS)")
	dur := flag.Duration("dur", 200*time.Millisecond, "minimum time per measurement")
	flag.Parse()

	fmt.Printf("measuring on %d logical CPUs (GOMAXPROCS %d)...\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	r := membw.Measure(membw.Options{
		BufferBytes: *mb << 20,
		Workers:     *workers,
		MinDuration: *dur,
	})

	t := stats.NewTable("measurement", "value")
	t.AddRow("streaming read (DRAM)", fmt.Sprintf("%.2f GB/s", r.SeqReadGBs))
	t.AddRow("streaming write (DRAM)", fmt.Sprintf("%.2f GB/s", r.SeqWriteGBs))
	t.AddRow("streaming read (cache-resident)", fmt.Sprintf("%.2f GB/s", r.CachedReadGBs))
	t.AddRow("dependent random read", fmt.Sprintf("%.1f ns", r.RandomReadNS))
	t.Render(flag.CommandLine.Output())

	fmt.Printf(`
calibrated platform snippet (single socket; edit cache sizes to match):

	p := model.Platform{
		Name:      "this host (membench)",
		Sockets:   1,
		FreqGHz:   2.5, // set your nominal frequency
		BMem:      %.1f,
		BMemMax:   %.1f,
		BLLCToL2:  %.1f,
		BL2ToLLC:  %.1f,
		BQPI:      %.1f, // single socket: unused
		LLCBytes:  32 << 20,
		L2Bytes:   1 << 20,
		CacheLine: 64,
	}
`, r.SeqReadGBs, r.SeqReadGBs*1.4, r.CachedReadGBs, r.SeqWriteGBs, r.SeqReadGBs/2)
}
