// Command graph500 runs the Graph500-style benchmark (the methodology
// behind the paper's Toy++ row and its cluster comparison): Kronecker
// construction, repeated validated BFS, harmonic-mean TEPS — plus an
// optional cluster-equivalence projection reproducing the paper's
// "matches a 256-node system" analysis.
//
// Usage:
//
//	graph500 -scale 20 -edgefactor 16 -roots 8 -sockets 2
//	graph500 -scale 18 -cluster-node-mteps 20
package main

import (
	"flag"
	"fmt"
	"os"

	"fastbfs/bfs"
	"fastbfs/cluster"
	"fastbfs/graph500"
	"fastbfs/internal/stats"
)

func main() {
	scale := flag.Int("scale", 18, "log2 vertex count")
	edgeFactor := flag.Int("edgefactor", 16, "edges per vertex")
	roots := flag.Int("roots", 8, "BFS roots")
	sockets := flag.Int("sockets", 2, "simulated sockets")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "graph seed (0 = default)")
	skipValidate := flag.Bool("skip-validation", false, "skip per-root validation")
	clusterNode := flag.Float64("cluster-node-mteps", 0,
		"if > 0, also report how many era-2010 cluster nodes at this per-node MTEPS match the measured rate")
	flag.Parse()

	o := bfs.Default(*sockets)
	o.Workers = *workers
	rep, err := graph500.Run(graph500.Spec{
		Scale: *scale, EdgeFactor: *edgeFactor, Roots: *roots,
		Seed: *seed, SkipValidation: *skipValidate,
	}, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graph500: %v\n", err)
		os.Exit(1)
	}

	t := stats.NewTable("root", "visited", "levels", "MTEPS", "validated")
	for _, rr := range rep.Roots {
		t.AddRow(rr.Root, rr.Visited, rr.Levels, rr.TEPS/1e6, rr.Validated)
	}
	t.Render(os.Stdout)
	fmt.Printf("\n%s\n", rep)

	if *clusterNode > 0 {
		c := cluster.Era2010Cluster(*clusterNode * 1e6)
		w := cluster.Workload{Edges: rep.Edges, Depth: maxLevels(rep)}
		nodes, err := cluster.NodesToMatch(c, w, rep.HarmonicMeanTEPS, 1<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graph500: cluster projection: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("cluster equivalence: ~%d era-2010 nodes at %.0f MTEPS/node "+
			"match this single-node rate (the paper cites 256 nodes)\n",
			nodes, *clusterNode)
	}
}

func maxLevels(rep *graph500.Report) int {
	m := 1
	for _, rr := range rep.Roots {
		if rr.Levels > m {
			m = rr.Levels
		}
	}
	return m
}
