// Command graphgen generates a synthetic graph and writes it in the
// fastbfs binary CSR format.
//
// Usage:
//
//	graphgen -kind ur -n 1048576 -degree 16 -o ur.csr
//	graphgen -kind rmat -scale 20 -edgefactor 16 -o rmat.csr
//	graphgen -kind grid -rows 1024 -cols 1024 -o road.csr
//	graphgen -kind pa -n 100000 -degree 8 -o social.csr
//	graphgen -kind stress -n 65536 -degree 8 -o stress.csr
//	graphgen -kind kron -scale 20 -edgefactor 16 -o toy.csr
package main

import (
	"flag"
	"fmt"
	"os"

	"fastbfs/graph"
	"fastbfs/graph/gen"
)

func main() {
	kind := flag.String("kind", "ur", "ur | random | rmat | kron | grid | pa | stress | mesh | smallworld")
	n := flag.Int("n", 1<<20, "vertices (ur/random/pa/stress/smallworld)")
	degree := flag.Int("degree", 16, "degree / edge factor / attachment count")
	scale := flag.Int("scale", 20, "log2 vertices (rmat/kron)")
	edgeFactor := flag.Int("edgefactor", 16, "edges per vertex (rmat/kron)")
	rows := flag.Int("rows", 1024, "grid rows")
	cols := flag.Int("cols", 1024, "grid cols")
	shortcuts := flag.Int("shortcuts", 0, "grid shortcut edges per 1000 vertices")
	rewire := flag.Float64("rewire", 0.1, "small-world rewiring probability")
	seed := flag.Uint64("seed", 1, "generator seed")
	symmetrize := flag.Bool("symmetrize", false, "add every reverse edge (serve with bfsd -symmetric)")
	out := flag.String("o", "", "output path (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o output path is required")
		os.Exit(2)
	}

	var g *graph.Graph
	var err error
	switch *kind {
	case "ur":
		g, err = gen.UniformRandom(*n, *degree, *seed)
	case "random":
		g, err = gen.RandomEdges(*n, int64(*n)*int64(*degree), *seed)
	case "rmat":
		g, err = gen.RMAT(gen.Graph500Params(*scale, *edgeFactor), *seed)
	case "kron":
		g, err = gen.Kronecker(*scale, *edgeFactor, *seed)
	case "grid":
		g, err = gen.Grid2D(*rows, *cols, *shortcuts, *seed)
	case "pa":
		g, err = gen.PreferentialAttachment(*n, *degree, *seed)
	case "stress":
		g, err = gen.StressBipartite(*n, *degree, *seed)
	case "mesh":
		d := 1
		for d*d*d < *n {
			d++
		}
		g, err = gen.BandedMesh(d, d, d)
	case "smallworld":
		g, err = gen.SmallWorld(*n, *degree, *rewire, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if *symmetrize {
		g = g.Symmetrize()
	}
	if err := g.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: saving: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %s\n", *out, graph.ComputeStats(g))
}
