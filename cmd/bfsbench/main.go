// Command bfsbench regenerates the paper's evaluation tables and figures
// on scaled-down synthetic workloads.
//
// Usage:
//
//	bfsbench [flags] <experiment>...
//
// Experiments: table1 table2 fig4 fig5 fig6 fig7 fig8 modelcheck ablate
// hybrid index tune all
//
// Flags:
//
//	-scale N    divide the paper's graph sizes (and simulated LLC) by N
//	            (default 64; 1 reproduces paper sizes and needs ~100 GB)
//	-workers N  traversal goroutines (default GOMAXPROCS)
//	-roots N    starting vertices averaged per graph (default 5)
//	-seed N     workload seed
//	-json       also write the hybrid benchmark as BENCH_<scale>.json
//	            (per-level directions, MTEPS, bytes/edge model vs measured)
//	-v          log progress
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fastbfs/experiments"
	"fastbfs/internal/stats"
)

func main() {
	scale := flag.Int("scale", 64, "divide the paper's graph sizes by this factor")
	workers := flag.Int("workers", 0, "traversal goroutines (0 = GOMAXPROCS)")
	roots := flag.Int("roots", 5, "starting vertices averaged per graph")
	seed := flag.Uint64("seed", 20120521, "workload seed")
	jsonOut := flag.Bool("json", false, "write hybrid benchmark JSON (BENCH_<scale>.json)")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	cfg := experiments.Config{
		Scale: *scale, Workers: *workers, Roots: *roots, Seed: *seed, Log: logw,
	}

	args := flag.Args()
	if len(args) == 0 && !*jsonOut {
		fmt.Fprintln(os.Stderr, "usage: bfsbench [flags] <table1|table2|fig4|fig5|fig6|fig7|fig8|modelcheck|scaling|ablate|hybrid|index|tune|all>...")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "modelcheck", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "scaling", "ablate", "hybrid", "index", "tune"}
	}

	type runner func() (*stats.Table, error)
	runners := map[string]runner{
		"table1":     func() (*stats.Table, error) { return experiments.Table1(), nil },
		"table2":     func() (*stats.Table, error) { return experiments.Table2(cfg) },
		"fig4":       func() (*stats.Table, error) { return experiments.Fig4(cfg) },
		"fig5":       func() (*stats.Table, error) { return experiments.Fig5(cfg) },
		"fig6":       func() (*stats.Table, error) { return experiments.Fig6(cfg) },
		"fig7":       func() (*stats.Table, error) { return experiments.Fig7(cfg) },
		"fig8":       func() (*stats.Table, error) { return experiments.Fig8(cfg) },
		"modelcheck": experiments.ModelCheck,
		"scaling":    func() (*stats.Table, error) { return experiments.Scaling(cfg) },
		"ablate":     func() (*stats.Table, error) { return experiments.Ablate(cfg) },
		"hybrid":     func() (*stats.Table, error) { return experiments.Hybrid(cfg) },
		"index":      func() (*stats.Table, error) { return experiments.Index(cfg) },
		"tune":       func() (*stats.Table, error) { return experiments.Tune(cfg) },
	}
	titles := map[string]string{
		"table1":     "Table I — platform characteristics (modeled machine)",
		"table2":     "Table II — real-world graph analogues",
		"fig4":       "Figure 4 — VIS representations vs no-VIS baseline (UR graphs)",
		"fig5":       "Figure 5 — multi-socket schemes, measured and model-projected",
		"fig6":       "Figure 6 — ours vs atomic-bitmap baseline (UR, R-MAT)",
		"fig7":       "Figure 7 — real-world analogues, ours vs baseline",
		"fig8":       "Figure 8 — cycles/edge per phase, measured vs model",
		"modelcheck": "Section V-C / Appendix D — worked model example",
		"scaling":    "Section V-B — socket scaling, measured and projected",
		"ablate":     "Section V-A — latency-hiding ablations",
		"hybrid":     "Direction-optimizing hybrid vs top-down (comparable MTEPS*)",
		"index":      "Distance-oracle index — build cost and point-query QPS vs per-query hybrid BFS",
		"tune":       "Model-driven auto-tuning — calibrated profile vs engine defaults (analogue suite)",
	}

	for _, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bfsbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", titles[name])
		if name != "table1" && name != "modelcheck" {
			fmt.Printf("(scale 1/%d, %d roots, seed %d; elapsed %v)\n",
				cfg.Scale, cfg.Roots, cfg.Seed, time.Since(start).Round(time.Millisecond))
		}
		tab.Render(os.Stdout)
		fmt.Println()
	}

	if *jsonOut {
		rep, err := experiments.HybridReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: hybrid report: %v\n", err)
			os.Exit(1)
		}
		path := fmt.Sprintf("BENCH_%d.json", rep.Scale)
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (hybrid %.1f vs top-down %.1f MTEPS, %.2fx, dirs %s)\n",
			path, rep.HybridMTEPS, rep.TopDownMTEPS, rep.Speedup, rep.Directions)
	}
}
