// Command modelcalc evaluates the paper's analytical performance model
// (§IV) for arbitrary workload parameters, printing the per-phase byte
// volumes and cycle counts for 1..N sockets.
//
// Usage:
//
//	modelcalc -v 8388608 -vprime 4194304 -eprime 64000000 -depth 6 \
//	          -npbv 2 -nvis 1 -alpha-adj 0.6 -sockets 4
package main

import (
	"flag"
	"fmt"
	"os"

	"fastbfs/internal/stats"
	"fastbfs/model"
)

func main() {
	v := flag.Int64("v", 8<<20, "|V| total vertices")
	vp := flag.Int64("vprime", 4<<20, "|V'| visited vertices")
	ep := flag.Int64("eprime", 64172851, "|E'| traversed edges")
	depth := flag.Int("depth", 6, "graph depth D")
	npbv := flag.Int("npbv", 2, "N_PBV bins")
	nvis := flag.Int("nvis", 1, "N_VIS partitions")
	aAdj := flag.Float64("alpha-adj", 0, "alpha_Adj (0 = balanced)")
	aDP := flag.Float64("alpha-dp", 0, "alpha_DP (0 = balanced)")
	sockets := flag.Int("sockets", 2, "max sockets to project")
	flag.Parse()

	w := model.Workload{
		Vertices: *v, Visited: *vp, Edges: *ep, Depth: *depth,
		NPBV: *npbv, NVIS: *nvis, AlphaAdj: *aAdj, AlphaDP: *aDP,
	}
	p := model.NehalemX5570()
	fmt.Printf("platform: %s\nworkload: |V|=%s |V'|=%s |E'|=%s rho'=%.2f D=%d N_PBV=%d N_VIS=%d\n\n",
		p.Name, stats.HumanCount(w.Vertices), stats.HumanCount(w.Visited),
		stats.HumanCount(w.Edges), w.RhoPrime(), w.Depth, w.NPBV, w.NVIS)

	tr := model.DataTransfers(p, w)
	fmt.Printf("bytes/edge: Phase-I %.2f (IV.1a)  Phase-II %.2f (IV.1b)  LLC %.2f (IV.1c, pre-fit)  rearr %.2f (IV.1d)\n\n",
		tr.Phase1DDR(), tr.Phase2DDR(), tr.Phase2LLC(), tr.Rearrange)

	t := stats.NewTable("sockets", "fit", "P1 cyc/e", "P2 cyc/e", "rearr", "total", "MTEPS")
	for ns := 1; ns <= *sockets; ns *= 2 {
		pr, err := model.Predict(p, w, ns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelcalc: %v\n", err)
			os.Exit(1)
		}
		t.AddRow(ns, pr.L2Fit, pr.CyclesPhase1, pr.CyclesPhase2,
			pr.CyclesRearrange, pr.CyclesPerEdge, pr.MTEPS)
	}
	t.Render(os.Stdout)
}
