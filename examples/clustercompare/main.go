// Cluster comparison: the paper's headline economics argument (§I) —
// measure this machine's single-node BFS rate on a Graph500 workload,
// then project how many era-2010 cluster nodes it replaces and what the
// modeled dual-socket Nehalem of the paper replaces (the paper cites a
// 256-node system from the November 2010 Graph500 list).
package main

import (
	"context"
	"fmt"
	"log"

	"fastbfs/bfs"
	"fastbfs/cluster"
	"fastbfs/graph/gen"
	"fastbfs/graph500"
	"fastbfs/model"
)

func main() {
	// Measure this host on a small Graph500 problem.
	spec := graph500.Spec{Scale: 18, EdgeFactor: 16, Roots: 4}
	rep, err := graph500.Run(spec, bfs.Default(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("this host: %s\n\n", rep)

	w := cluster.Workload{Edges: rep.Edges, Depth: 8}

	// What does a 2010-era cluster node achieve? Distributed BFS codes
	// of the Nov 2010 list averaged tens of MTEPS per node after
	// communication overheads.
	const eraNodeMTEPS = 20e6

	fmt.Println("nodes of an era-2010 cluster (20 MTEPS/node, DDR IB) needed to match:")
	for _, tgt := range []struct {
		name string
		teps float64
	}{
		{"this host (measured)", rep.HarmonicMeanTEPS},
		{"paper's dual-socket Nehalem (modeled)", paperRate()},
	} {
		nodes, err := cluster.NodesToMatch(cluster.Era2010Cluster(eraNodeMTEPS), w, tgt.teps, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s %8.1f MTEPS  ->  ~%d nodes\n", tgt.name, tgt.teps/1e6, nodes)
	}
	fmt.Println("\n(the paper reports its single node matching a 256-node system on the Nov 2010 Graph500 list)")

	// Validate the model's communication assumption with the real
	// distributed simulation: a 1-D partitioned multi-node BFS whose
	// per-edge remote fraction the model takes as (1 - 1/N).
	fmt.Println("\ndistributed-BFS simulation (in-process nodes) on a scale-16 graph:")
	small, err := gen.Kronecker(16, 16, 20100521)
	if err != nil {
		log.Fatal(err)
	}
	root := graph500.SampleRoots(small, 1, 3)[0]
	for _, n := range []int{1, 2, 4, 8} {
		sim, err := cluster.NewSim(small, n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background(), root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d nodes: %7d visited in %d steps, remote fraction %.3f (model assumes %.3f), %s on the wire\n",
			n, res.Visited, res.Steps, res.RemoteFraction(), 1-1/float64(n),
			humanBytes(res.BytesOnWire))
	}

	// And the break-even view: cluster rate as node count grows.
	fmt.Println("\nprojected era-2010 cluster scaling (20 MTEPS/node):")
	for _, n := range []int{1, 16, 64, 256, 1024} {
		c := cluster.Era2010Cluster(eraNodeMTEPS)
		c.Nodes = n
		pr, err := cluster.Predict(c, w)
		if err != nil {
			log.Fatal(err)
		}
		bound := "compute-bound"
		if pr.NetworkBound {
			bound = "network-bound"
		}
		fmt.Printf("  %5d nodes: %9.1f MTEPS  (%s)\n", n, pr.TEPS/1e6, bound)
	}
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// paperRate returns the analytical model's dual-socket prediction for
// the paper's worked R-MAT example (≈850-900 MTEPS; the paper measured
// 820 and reported ~1000 on larger R-MAT graphs).
func paperRate() float64 {
	pr, err := model.Predict(model.NehalemX5570(), model.WorkedExampleWorkload(), 2)
	if err != nil {
		log.Fatal(err)
	}
	return pr.EdgesPerSec
}
