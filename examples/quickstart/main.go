// Quickstart: generate a power-law graph, traverse it with the paper's
// configuration, validate the result and print the traversal rate.
package main

import (
	"fmt"
	"log"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
)

func main() {
	// A Graph500-style R-MAT graph: 2^18 vertices, 16 edges per vertex.
	g, err := gen.RMAT(gen.Graph500Params(18, 16), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// The paper's best configuration on two (simulated) sockets:
	// partitioned atomic-free VIS, load-balanced two-phase traversal,
	// TLB rearrangement, batched binning and software prefetch.
	res, err := bfs.Run(g, 0, bfs.Default(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visited %d vertices (%d levels) at %.1f MTEPS\n",
		res.Visited, res.Steps, res.MTEPS())

	// Depths and parents are available per vertex.
	for v := uint32(1); v <= 3; v++ {
		fmt.Printf("vertex %d: depth %d, parent %d\n", v, res.Depth(v), res.Parent(v))
	}

	// Graph500-style validation: valid BFS tree, exact depths.
	if err := bfs.Validate(g, res); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Println("validation: OK")
}
