// Graph500-style benchmark run: generate a Kronecker graph at the given
// scale, run BFS from several sampled roots, validate every tree, and
// report harmonic-mean TEPS — the methodology of the benchmark the paper
// targets (its Toy++ row is Graph500 scale 28).
//
// Usage:
//
//	go run ./examples/graph500 [-scale 20] [-edgefactor 16] [-roots 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph/gen"
)

func main() {
	scale := flag.Int("scale", 20, "log2 of the vertex count")
	edgeFactor := flag.Int("edgefactor", 16, "edges per vertex")
	roots := flag.Int("roots", 8, "BFS roots to sample")
	sockets := flag.Int("sockets", 2, "simulated sockets")
	flag.Parse()

	fmt.Printf("Graph500-style run: scale %d, edgefactor %d\n", *scale, *edgeFactor)

	genStart := time.Now()
	g, err := gen.Kronecker(*scale, *edgeFactor, 20100521)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel 1 (construction): %d vertices, %d edges in %v\n",
		g.NumVertices(), g.NumEdges(), time.Since(genStart).Round(time.Millisecond))

	e, err := bfs.NewEngine(g, bfs.Default(*sockets))
	if err != nil {
		log.Fatal(err)
	}

	// Sample roots with nonzero degree, evenly spaced, as the reference
	// implementation does.
	var sources []uint32
	step := g.NumVertices() / (*roots * 4)
	if step == 0 {
		step = 1
	}
	for v := 0; v < g.NumVertices() && len(sources) < *roots; v += step {
		if g.Degree(uint32(v)) > 0 {
			sources = append(sources, uint32(v))
		}
	}

	var teps []float64
	for i, src := range sources {
		res, err := e.Run(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := bfs.Validate(g, res); err != nil {
			log.Fatalf("root %d: validation failed: %v", src, err)
		}
		rate := res.MTEPS() * 1e6
		teps = append(teps, rate)
		fmt.Printf("kernel 2, root %2d (vertex %8d): %7d visited, %2d levels, %6.1f MTEPS  [validated]\n",
			i, src, res.Visited, res.Steps, rate/1e6)
	}

	// Graph500 reports the harmonic mean of TEPS across roots.
	var invSum float64
	for _, r := range teps {
		invSum += 1 / r
	}
	hm := float64(len(teps)) / invSum
	fmt.Printf("\nharmonic-mean TEPS over %d validated roots: %.1f MTEPS\n", len(teps), hm/1e6)
}
