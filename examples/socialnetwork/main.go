// Social-network analysis: degrees of separation on a heavy-tailed
// friendship graph — the workload class (Orkut/Facebook/Twitter rows of
// the paper's Table II) that motivates single-node BFS throughput.
//
// The example builds a preferential-attachment graph, finds the
// distribution of shortest-path hop counts from a "celebrity" (highest
// degree) and from an average member, and reports how much of the
// network lies within three hops of each.
package main

import (
	"fmt"
	"log"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

func main() {
	const members = 200_000
	const friendsPerJoin = 8
	g, err := gen.PreferentialAttachment(members, friendsPerJoin, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("network: %d members, %d friendship edges, max degree %d\n",
		st.Vertices, st.Edges, st.MaxDegree)

	// The celebrity: the member with the most friends.
	celebrity := uint32(0)
	for v := 1; v < members; v++ {
		if g.Degree(uint32(v)) > g.Degree(celebrity) {
			celebrity = uint32(v)
		}
	}

	e, err := bfs.NewEngine(g, bfs.Default(2))
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, src uint32) {
		res, err := e.Run(src)
		if err != nil {
			log.Fatal(err)
		}
		// Hop-count histogram.
		hist := make([]int, res.Steps+1)
		var within3 int
		for v := 0; v < members; v++ {
			d := res.Depth(uint32(v))
			if d < 0 {
				continue
			}
			hist[d]++
			if d <= 3 {
				within3++
			}
		}
		fmt.Printf("\n%s (member %d, %d friends) at %.1f MTEPS:\n",
			label, src, g.Degree(src), res.MTEPS())
		for d, c := range hist {
			if c > 0 {
				fmt.Printf("  %d hops: %6d members (%.1f%%)\n",
					d, c, 100*float64(c)/members)
			}
		}
		fmt.Printf("  within 3 hops: %.1f%% of the network\n", 100*float64(within3)/members)
	}

	report("celebrity", celebrity)
	report("average member", members/2)
}
