// Example service demonstrates the fastbfs traversal query service end
// to end, in one process: it starts a bfsd-style HTTP server over an
// RMAT graph, fires waves of concurrent JSON clients at it, and prints
// how the scheduler served them — how many queries rode a batched
// multi-source sweep, how many coalesced onto an in-flight traversal,
// and how many hit the result cache — before draining gracefully.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"fastbfs/graph/gen"
	"fastbfs/serve"
)

func main() {
	g, err := gen.RMAT(gen.Graph500Params(14, 16), 1)
	if err != nil {
		log.Fatal(err)
	}
	svc := serve.New(serve.Config{
		BatchThreshold: 4,
		BatchLinger:    2 * time.Millisecond, // small window to gather batches
		CacheEntries:   16,
	})
	if err := svc.AddGraph("rmat", g); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: serve.NewHandler(svc)}
	go func() { _ = server.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("bfsd-style service on %s serving %d vertices / %d edges\n",
		base, g.NumVertices(), g.NumEdges())

	// Wave 1: 64 distinct sources at once — the scheduler batches them
	// into bit-parallel sweeps.
	query := func(req serve.Request) (*serve.Response, error) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		var out serve.Response
		return &out, json.NewDecoder(resp.Body).Decode(&out)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	batched := 0
	for c := 0; c < 64; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := uint32((c * 977) % g.NumVertices())
			resp, err := query(serve.Request{Graph: "rmat", Source: src, Targets: []uint32{0}})
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			mu.Lock()
			if resp.Batched {
				batched++
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	fmt.Printf("wave 1: 64 distinct sources in %v (%d served by batched sweeps)\n",
		time.Since(start).Round(time.Millisecond), batched)

	// Wave 2: 32 clients, 8 distinct sources — coalescing and caching
	// absorb the duplicates.
	start = time.Now()
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := uint32((c % 8) * 1013)
			if _, err := query(serve.Request{Graph: "rmat", Source: src}); err != nil {
				log.Printf("client %d: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("wave 2: 32 clients over 8 sources in %v\n", time.Since(start).Round(time.Millisecond))

	// A path query rides the same cached traversals.
	target := uint32(4242)
	resp, err := query(serve.Request{Graph: "rmat", Source: 0, PathTo: &target})
	if err != nil {
		log.Fatal(err)
	}
	if resp.PathFound != nil && *resp.PathFound {
		fmt.Printf("path 0→%d: %d hops (cached=%v)\n", target, len(resp.Path)-1, resp.Cached)
	} else {
		fmt.Printf("vertex %d unreachable from 0\n", target)
	}

	st := svc.Stats()
	fmt.Printf("stats: requests=%d sweeps=%d batched=%d coalesced=%d cache_hits=%d engine_runs=%d\n",
		st.Requests, st.Sweeps, st.BatchedQueries, st.Coalesced, st.CacheHits, st.EngineRuns)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = server.Shutdown(ctx)
	if err := svc.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
