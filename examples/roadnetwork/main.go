// Road-network reachability: hop-distance queries on a high-diameter
// grid road graph — the USA-road workload class of the paper's Table II
// (degree ≈ 4, diameter in the thousands), which stresses the
// level-synchronous engine with thousands of tiny frontiers.
//
// The example measures BFS over a plain city grid and over the same grid
// with a sparse highway overlay, showing how shortcuts collapse the hop
// diameter, and times service-area queries (how many intersections are
// within K hops of a depot).
package main

import (
	"fmt"
	"log"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
)

func main() {
	const rows, cols = 700, 700 // ~half a million intersections

	city, err := gen.Grid2D(rows, cols, 0, 11)
	if err != nil {
		log.Fatal(err)
	}
	highway, err := gen.Grid2D(rows, cols, 5, 11) // 5 shortcuts per 1000
	if err != nil {
		log.Fatal(err)
	}

	// Depot at the map center.
	depot := uint32(rows/2*cols + cols/2)

	run := func(label string, g *graph.Graph) *bfs.Result {
		res, err := bfs.Run(g, depot, bfs.Default(2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d intersections, %8d roads, hop diameter %4d, %.1f MTEPS\n",
			label, g.NumVertices(), g.NumEdges(), res.Steps-1, res.MTEPS())
		return res
	}

	fmt.Println("BFS from the central depot:")
	plain := run("city grid", city)
	fast := run("city grid + highways", highway)

	// Service areas: intersections reachable within K hops.
	fmt.Println("\nservice area from the depot (reachable intersections):")
	for _, k := range []int32{10, 50, 200} {
		var plainN, fastN int
		for v := 0; v < city.NumVertices(); v++ {
			if d := plain.Depth(uint32(v)); d >= 0 && d <= k {
				plainN++
			}
			if d := fast.Depth(uint32(v)); d >= 0 && d <= k {
				fastN++
			}
		}
		fmt.Printf("  within %3d hops: %7d (grid)  %7d (with highways, %.1fx)\n",
			k, plainN, fastN, float64(fastN)/float64(plainN))
	}

	// Farthest intersection: the practical meaning of the hop diameter.
	far := uint32(0)
	for v := 0; v < city.NumVertices(); v++ {
		if plain.Depth(uint32(v)) > plain.Depth(far) {
			far = uint32(v)
		}
	}
	fmt.Printf("\nfarthest intersection from the depot: (%d,%d) at %d hops\n",
		far/cols, far%cols, plain.Depth(far))
}
