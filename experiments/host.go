package experiments

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"fastbfs/internal/membw"
	"fastbfs/model"
)

var (
	hostOnce sync.Once
	hostPlat model.Platform
)

// HostPlatform measures this machine's memory system once per process
// (Molka-style microbenchmarks, as the paper's Table I was produced) and
// returns a single-socket model.Platform calibrated to it. Figure 8's
// "calibrated" column evaluates the analytical model against these
// bandwidths, closing the loop between the paper-scale model and
// wall-clock measurements on whatever host runs the experiments.
//
// The frequency is fixed at the paper's 2.93 GHz so that measured
// cycles/edge (wall time x 2.93 GHz) and calibrated-model cycles/edge
// share a unit; the frequency cancels in their ratio.
func HostPlatform() model.Platform {
	hostOnce.Do(func() {
		r := membw.Measure(membw.Options{
			BufferBytes: 64 << 20,
			MinDuration: 50 * time.Millisecond,
		})
		llc := readCacheBytes("/sys/devices/system/cpu/cpu0/cache/index3/size", 16<<20)
		l2 := readCacheBytes("/sys/devices/system/cpu/cpu0/cache/index2/size", 1<<20)
		hostPlat = model.Platform{
			Name:           "calibrated host",
			Sockets:        1,
			CoresPerSocket: 1,
			FreqGHz:        2.93,
			BMem:           r.SeqReadGBs,
			BMemMax:        r.SeqReadGBs * 1.4,
			BLLCToL2:       r.CachedReadGBs,
			BL2ToLLC:       r.SeqWriteGBs,
			BQPI:           r.SeqReadGBs / 2,
			LLCBytes:       llc,
			L2Bytes:        l2,
			CacheLine:      64,
		}
	})
	return hostPlat
}

// readCacheBytes parses a sysfs cache size like "16384K"; fallback on
// any error.
func readCacheBytes(path string, fallback int64) int64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fallback
	}
	s := strings.TrimSpace(string(raw))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return fallback
	}
	return v * mult
}

// writeFile is a tiny indirection for tests.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
