package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHybridSmoke(t *testing.T) {
	tab, err := Hybrid(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 { // top-down + 3 hybrid variants
		t.Fatalf("Hybrid rows = %d, want 4:\n%s", tab.NumRows(), tab.String())
	}
	// The never-switch corner must stay all top-down.
	if !strings.Contains(tab.String(), "TTTT") {
		t.Errorf("never-switch variant not pure top-down:\n%s", tab.String())
	}
}

func TestHybridReportSmoke(t *testing.T) {
	rep, err := HybridReport(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 0 || rep.TopDownMTEPS <= 0 || rep.HybridMTEPS <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if len(rep.Levels) == 0 || len(rep.Directions) != len(rep.Levels) {
		t.Fatalf("levels/directions mismatch: %d levels, dirs %q",
			len(rep.Levels), rep.Directions)
	}
	if rep.SwitchLevel > 0 && rep.BytesPerEdgeModel <= 0 {
		t.Errorf("switched run missing model bytes/edge: %+v", rep)
	}
	if rep.BytesPerEdgeMeasured <= 0 {
		t.Errorf("missing measured bytes/edge")
	}
	// Must round-trip as JSON (what bfsbench -json writes).
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back HybridBench
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Directions != rep.Directions {
		t.Errorf("JSON round-trip lost directions")
	}
}
