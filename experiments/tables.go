package experiments

import (
	"fmt"
	"math"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/stats"
	"fastbfs/model"
)

// Table1 renders the paper's Table I platform characteristics (the
// modeled machine — all model predictions in this repo use these
// constants).
func Table1() *stats.Table {
	p := model.NehalemX5570()
	t := stats.NewTable("Platform Characteristic", "Performance")
	t.AddRow("Machine", p.Name)
	t.AddRow("Sockets x cores", fmt.Sprintf("%d x %d @ %.2f GHz", p.Sockets, p.CoresPerSocket, p.FreqGHz))
	t.AddRow("GFlops", fmt.Sprintf("%d x %.0f", p.Sockets, p.GFlops))
	t.AddRow("Achievable DDR BW", fmt.Sprintf("%d x %.0f GBps (peak %d x %.0f GBps)",
		p.Sockets, p.BMem, p.Sockets, p.BMemMax))
	t.AddRow("Read BW from LLC->L2", fmt.Sprintf("%d x %.0f GBps", p.Sockets, p.BLLCToL2))
	t.AddRow("Write BW from L2->LLC", fmt.Sprintf("%d x %.0f GBps", p.Sockets, p.BL2ToLLC))
	t.AddRow("QPI BW per direction", fmt.Sprintf("%.0f GBps", p.BQPI))
	t.AddRow("LLC per socket", stats.HumanBytes(p.LLCBytes))
	t.AddRow("L2 per core", stats.HumanBytes(p.L2Bytes))
	return t
}

// Analogue is a synthetic stand-in for one Table II real-world graph.
type Analogue struct {
	Name       string
	PaperV     int64 // the paper's vertex count
	PaperE     int64 // the paper's edge count
	PaperDepth int
	G          *graph.Graph
}

// BuildAnalogues generates the Table II analogue suite at the configured
// scale. Each analogue matches its original's |V| (scaled), edge density
// and diameter class; DESIGN.md §6 documents the substitutions.
func BuildAnalogues(cfg Config) ([]Analogue, error) {
	cfg = cfg.withDefaults()
	s := cfg.Seed
	var out []Analogue
	add := func(name string, paperV, paperE int64, paperDepth int, g *graph.Graph, err error) error {
		if err != nil {
			return fmt.Errorf("experiments: building %s analogue: %w", name, err)
		}
		cfg.logf("table2: %s ready (V=%d E=%d)", name, g.NumVertices(), g.NumEdges())
		out = append(out, Analogue{Name: name, PaperV: paperV, PaperE: paperE,
			PaperDepth: paperDepth, G: g})
		return nil
	}

	// FreeScale1: circuit netlist — modest degree, mid diameter.
	{
		n := cfg.scaled(3_430_000)
		g, err := gen.PreferentialAttachment(n, 2, s+1)
		if err == nil {
			g, err = gen.WithPathTail(g, 0, 120)
		}
		if e := add("FreeScale1", 3_430_000, 17_100_000, 128, g, err); e != nil {
			return nil, e
		}
	}
	// Wikipedia: power-law links with a long topic-chain tail.
	{
		n := cfg.scaled(2_400_000)
		g, err := gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
			Scale: log2ceil(n), EdgeFactor: 17}, s+2)
		if err == nil {
			root, _ := graph.LargestReach(g, 8)
			g, err = gen.WithPathTail(g, root, 450)
		}
		if e := add("Wikipedia", 2_400_000, 41_900_000, 460, g, err); e != nil {
			return nil, e
		}
	}
	// Cage15: DNA electrophoresis matrix — near-uniform degree 19.
	{
		n := cfg.scaled(5_150_000)
		g, err := gen.UniformRandom(n, 19, s+3)
		if e := add("Cage15", 5_150_000, 99_200_000, 50, g, err); e != nil {
			return nil, e
		}
	}
	// Nlpkkt160: banded 3-D KKT mesh; frontier sweeps the id space as a
	// wave (the paper's real-world stress case).
	{
		n := cfg.scaled(8_350_000)
		d := int(math.Cbrt(float64(n)))
		g, err := gen.BandedMesh(d, d, d)
		if e := add("Nlpkkt160", 8_350_000, 225_400_000, 163, g, err); e != nil {
			return nil, e
		}
	}
	// USA road networks: degree ≈ 2.4, enormous diameter.
	{
		n := cfg.scaled(6_260_000)
		d := int(math.Sqrt(float64(n)))
		g, err := gen.Grid2D(d, d, 0, s+4)
		if e := add("USA-West", 6_260_000, 15_240_000, 2873, g, err); e != nil {
			return nil, e
		}
	}
	{
		n := cfg.scaled(23_940_000)
		d := int(math.Sqrt(float64(n)))
		g, err := gen.Grid2D(d, d, 0, s+5)
		if e := add("USA-All", 23_940_000, 58_330_000, 6230, g, err); e != nil {
			return nil, e
		}
	}
	// Social networks: heavy-tailed degree, tiny diameter.
	{
		n := cfg.scaled(3_070_000)
		g, err := gen.PreferentialAttachment(n, 36, s+6)
		if e := add("Orkut", 3_070_000, 223_500_000, 7, g, err); e != nil {
			return nil, e
		}
	}
	{
		n := cfg.scaled(61_570_000)
		g, err := gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
			Scale: log2ceil(n), EdgeFactor: 24}, s+7)
		if e := add("Twitter", 61_570_000, 1_468_360_000, 13, g, err); e != nil {
			return nil, e
		}
	}
	{
		n := cfg.scaled(2_940_000)
		g, err := gen.PreferentialAttachment(n, 7, s+8)
		if e := add("Facebook", 2_940_000, 41_920_000, 11, g, err); e != nil {
			return nil, e
		}
	}
	// Graph500 Toy++ (scale 28, edgefactor 16): Kronecker at scaled size.
	{
		n := cfg.scaled(256 << 20)
		g, err := gen.Kronecker(log2ceil(n), 16, s+9)
		if e := add("Toy++", 256<<20, 4096<<20, 6, g, err); e != nil {
			return nil, e
		}
	}
	return out, nil
}

// Table2 renders the paper's Table II beside the generated analogues'
// measured characteristics.
func Table2(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	analogues, err := BuildAnalogues(cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("graph", "paper V", "paper E", "paper depth",
		"ours V", "ours E", "ours depth", "ours avg deg")
	for _, a := range analogues {
		root, _ := graph.LargestReach(a.G, 8)
		depth, _ := graph.BFSDepth(a.G, root)
		st := graph.ComputeStats(a.G)
		t.AddRow(a.Name,
			stats.HumanCount(a.PaperV), stats.HumanCount(a.PaperE), a.PaperDepth,
			stats.HumanCount(int64(st.Vertices)), stats.HumanCount(st.Edges),
			depth, st.MeanDegree)
	}
	return t, nil
}

// ModelCheck renders the §V-C / Appendix D worked example: the paper's
// published intermediate values beside this implementation of the model.
func ModelCheck() (*stats.Table, error) {
	p := model.NehalemX5570()
	w := model.WorkedExampleWorkload()
	tr := model.DataTransfers(p, w)
	p1, err := model.Predict(p, w, 1)
	if err != nil {
		return nil, err
	}
	p2, err := model.Predict(p, w, 2)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("quantity", "paper", "model", "model/paper")
	row := func(name string, paper, got float64) {
		t.AddRow(name, paper, got, stats.Ratio(got, paper))
	}
	row("rho' (E'/V')", 15.3, w.RhoPrime())
	row("Phase-I DDR bytes/edge (IV.1a)", 21.7, tr.Phase1DDR())
	row("Phase-II DDR bytes/edge (IV.1b)", 13.54, tr.Phase2DDR())
	row("Phase-II LLC bytes/edge (IV.1c)", 51.1, tr.Phase2LLC()*model.L2Fit(p, w, 1))
	row("Rearrange bytes/edge (IV.1d)", 1.6, tr.Rearrange)
	row("1-socket Phase-I cycles/edge", 2.88, p1.CyclesPhase1)
	row("1-socket Phase-II cycles/edge", 3.80, p1.CyclesPhase2)
	row("2-socket cycles/edge", 3.47, p2.CyclesPerEdge)
	row("2-socket M edges/s", 844, p2.MTEPS)
	return t, nil
}

// Ablate measures the contribution of each optimization the paper calls
// out (§V-A "effect of latency hiding"): rearrangement (paper ≈1.15×),
// batched binning (the SIMD stand-in), prefetch, and the PBV encodings,
// plus serial and single-socket references.
func Ablate(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(16 << 20)
	g, err := gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
		Scale: log2ceil(n), EdgeFactor: 16}, cfg.Seed+99)
	if err != nil {
		return nil, err
	}
	roots := pickRoots(g, cfg.Roots)
	full := cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 2)

	variants := []struct {
		name string
		mod  func(bfs.Options) bfs.Options
	}{
		{"full (paper config)", func(o bfs.Options) bfs.Options { return o }},
		{"- rearrangement", func(o bfs.Options) bfs.Options { o.Rearrange = false; return o }},
		{"- batch binning", func(o bfs.Options) bfs.Options { o.BatchBinning = false; return o }},
		{"- prefetch", func(o bfs.Options) bfs.Options { o.PrefetchDist = 0; return o }},
		{"prefetch dist 16", func(o bfs.Options) bfs.Options { o.PrefetchDist = 16; return o }},
		{"marker encoding", func(o bfs.Options) bfs.Options { o.Encoding = bfs.EncodingMarker; return o }},
		{"pair encoding", func(o bfs.Options) bfs.Options { o.Encoding = bfs.EncodingPair; return o }},
		{"1 socket", func(o bfs.Options) bfs.Options { o.Sockets = 1; return o }},
		{"1 worker", func(o bfs.Options) bfs.Options { o.Workers = 1; return o }},
	}
	t := stats.NewTable("variant", "MTEPS", "vs full")
	var fullMTEPS float64
	for _, v := range variants {
		rs, err := measure(g, v.mod(full), roots)
		if err != nil {
			return nil, err
		}
		if v.name == "full (paper config)" {
			fullMTEPS = rs.MTEPS
		}
		cfg.logf("ablate: %s: %.1f MTEPS", v.name, rs.MTEPS)
		t.AddRow(v.name, rs.MTEPS, stats.Ratio(rs.MTEPS, fullMTEPS))
	}
	serial, err := bfs.RunSerial(g, roots[0])
	if err != nil {
		return nil, err
	}
	t.AddRow("serial reference", serial.MTEPS(), stats.Ratio(serial.MTEPS(), fullMTEPS))

	// Baseline classes the paper discusses (§I, §VI).
	async, err := bfs.RunAsync(g, roots[0], 0)
	if err != nil {
		return nil, err
	}
	t.AddRow("async (label-correcting)", async.MTEPS(), stats.Ratio(async.MTEPS(), fullMTEPS))
	ws, err := bfs.RunWorkStealing(g, roots[0], 0)
	if err != nil {
		return nil, err
	}
	t.AddRow("work-stealing (PBFS-style)", ws.MTEPS(), stats.Ratio(ws.MTEPS(), fullMTEPS))

	// Vertex reordering, which the paper deliberately does NOT apply to
	// its inputs ("we do not reorder the vertices in the graph to
	// improve locality"): quantify what it would have bought.
	ordered, err := g.Relabel(graph.DegreeOrderPermutation(g))
	if err != nil {
		return nil, err
	}
	rs, err := measure(ordered, full, pickRoots(ordered, cfg.Roots))
	if err != nil {
		return nil, err
	}
	t.AddRow("degree-ordered input (not in paper)", rs.MTEPS, stats.Ratio(rs.MTEPS, fullMTEPS))
	return t, nil
}
