package experiments

import (
	"math"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/index"
	"fastbfs/internal/numa"
	"fastbfs/internal/stats"
	"fastbfs/internal/trace"
	"fastbfs/model"
)

// Direction-optimizing ablation (not in the source paper, which is pure
// top-down; after Beamer et al.). Comparable throughput needs care: a
// hybrid run EXAMINES far fewer edges than a top-down one — that is the
// whole win — so quoting each run's own examined-edge TEPS would hide
// it. Every variant below is therefore scored with the top-down run's
// examined-edge count as numerator (per root), the standard
// direction-optimizing accounting.

// hybridGraph builds the ablation workload: a directed scale-free R-MAT
// where the heavy middle levels make bottom-up pay.
func hybridGraph(cfg Config) (*graph.Graph, error) {
	n := cfg.scaled(16 << 20)
	return gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
		Scale: log2ceil(n), EdgeFactor: 16}, cfg.Seed+42)
}

// comparable measures one variant's throughput against reference edge
// counts: MTEPS*_i = tdEdges[i] / elapsed_i, averaged over roots.
func comparable(g *graph.Graph, o bfs.Options, roots []uint32, tdEdges []int64) (float64, *bfs.Result, error) {
	e, err := bfs.NewEngine(g, o)
	if err != nil {
		return 0, nil, err
	}
	if _, err := e.Run(roots[0]); err != nil { // warmup
		return 0, nil, err
	}
	var sum float64
	var last *bfs.Result
	for i, r := range roots {
		res, err := e.Run(r)
		if err != nil {
			return 0, nil, err
		}
		if s := res.Elapsed.Seconds(); s > 0 {
			sum += float64(tdEdges[i]) / s / 1e6
		}
		last = res
	}
	return sum / float64(len(roots)), last, nil
}

// tdReference runs the top-down baseline once per root, returning its
// comparable MTEPS and the per-root examined-edge counts.
func tdReference(g *graph.Graph, o bfs.Options, roots []uint32) (float64, []int64, error) {
	e, err := bfs.NewEngine(g, o)
	if err != nil {
		return 0, nil, err
	}
	if _, err := e.Run(roots[0]); err != nil {
		return 0, nil, err
	}
	edges := make([]int64, len(roots))
	var sum float64
	for i, r := range roots {
		res, err := e.Run(r)
		if err != nil {
			return 0, nil, err
		}
		edges[i] = res.EdgesTraversed
		sum += res.MTEPS()
	}
	return sum / float64(len(roots)), edges, nil
}

// switchLevel returns the 1-based first bottom-up level, or 0.
func switchLevel(dirs []bfs.Direction) int {
	for i, d := range dirs {
		if d == bfs.DirBottomUp {
			return i + 1
		}
	}
	return 0
}

// Hybrid measures the direction-optimizing hybrid against the pure
// top-down engine (same full paper configuration otherwise), plus the
// α/β corner variants the unit tests pin.
func Hybrid(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	g, err := hybridGraph(cfg)
	if err != nil {
		return nil, err
	}
	roots := pickRoots(g, cfg.Roots)
	full := cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 2)

	tdMTEPS, tdEdges, err := tdReference(g, full, roots)
	if err != nil {
		return nil, err
	}
	cfg.logf("hybrid: top-down reference: %.1f MTEPS", tdMTEPS)

	variants := []struct {
		name        string
		alpha, beta float64
	}{
		{"hybrid (default α/β)", 0, 0},
		{"hybrid α=∞ (switch asap)", math.Inf(1), math.Inf(1)},
		{"hybrid α→0 (never switch)", 1e-12, 0},
	}
	t := stats.NewTable("variant", "MTEPS*", "vs top-down", "directions", "switch@")
	t.AddRow("top-down (paper config)", tdMTEPS, 1.0, "T…T", "-")
	for _, v := range variants {
		o := full
		o.Hybrid = true
		o.Alpha, o.Beta = v.alpha, v.beta
		mteps, last, err := comparable(g, o, roots, tdEdges)
		if err != nil {
			return nil, err
		}
		cfg.logf("hybrid: %s: %.1f MTEPS* (%s)", v.name, mteps,
			bfs.DirectionString(last.Directions))
		t.AddRow(v.name, mteps, stats.Ratio(mteps, tdMTEPS),
			bfs.DirectionString(last.Directions), switchLevel(last.Directions))
	}
	return t, nil
}

// HybridLevel is one traversal level of the JSON benchmark report.
type HybridLevel struct {
	Step      int    `json:"step"`
	Direction string `json:"direction"` // "T" or "B"
	Frontier  int64  `json:"frontier"`
	Edges     int64  `json:"edges"` // adjacency entries examined
}

// HybridBench is the machine-readable hybrid benchmark emitted by
// `bfsbench -json` as BENCH_<scale>.json.
type HybridBench struct {
	Scale      int    `json:"scale"` // log2 |V|
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	EdgeFactor int    `json:"edge_factor"`
	Seed       uint64 `json:"seed"`
	Roots      int    `json:"roots"`

	TopDownMTEPS float64 `json:"topdown_mteps"`
	HybridMTEPS  float64 `json:"hybrid_mteps"` // comparable numerator (see above)
	Speedup      float64 `json:"speedup"`

	Directions           string        `json:"directions"` // e.g. "TTBBBT"
	SwitchLevel          int           `json:"switch_level"`
	PredictedDirections  string        `json:"predicted_directions"` // model replay
	PredictedSwitchLevel int           `json:"predicted_switch_level"`
	Levels               []HybridLevel `json:"levels"`

	// Model-vs-measured DDR traffic, per examined edge. Measured comes
	// from the engine's instrument accounting (cache-line charges per
	// access); model is the blended PredictHybrid evaluation on the
	// calibrated host platform, fed the measured workload shape.
	BytesPerEdgeModel    float64 `json:"bytes_per_edge_model"`
	BytesPerEdgeMeasured float64 `json:"bytes_per_edge_measured"`
	ModelMTEPS           float64 `json:"model_mteps"`

	// Index is the distance-oracle benchmark on the same graph: landmark
	// labeling build cost and point-query QPS vs per-query hybrid BFS.
	Index *IndexBench `json:"index,omitempty"`

	// Tuning is the auto-tuning ablation over the analogue suite:
	// tuned-vs-default comparable MTEPS per graph plus the profile the
	// model chose (see experiments/tune.go).
	Tuning *TuneBench `json:"tuning,omitempty"`
}

// HybridReport runs the hybrid benchmark and assembles the JSON report.
func HybridReport(cfg Config) (*HybridBench, error) {
	cfg = cfg.withDefaults()
	g, err := hybridGraph(cfg)
	if err != nil {
		return nil, err
	}
	roots := pickRoots(g, cfg.Roots)
	full := cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 2)

	tdMTEPS, tdEdges, err := tdReference(g, full, roots)
	if err != nil {
		return nil, err
	}

	hyb := full
	hyb.Hybrid = true
	hybMTEPS, _, err := comparable(g, hyb, roots, tdEdges)
	if err != nil {
		return nil, err
	}

	// One instrumented top-down run (per-level profile for the model's
	// direction replay) and one instrumented hybrid run (per-level trace,
	// traffic accounting, bottom-up workload aggregation) on roots[0].
	tdw, tdRes, err := instrumented(g, full, roots[0], 1)
	if err != nil {
		return nil, err
	}
	frontier := make([]int64, len(tdRes.Trace.Steps))
	edges := make([]int64, len(tdRes.Trace.Steps))
	for i, s := range tdRes.Trace.Steps {
		frontier[i] = s.Frontier
		edges[i] = s.Edges
	}
	predicted := model.PredictDirections(int64(g.NumVertices()), g.NumEdges(),
		frontier, edges, hyb.Alpha, hyb.Beta)

	hi := hyb
	hi.Instrument = true
	he, err := bfs.NewEngine(g, hi)
	if err != nil {
		return nil, err
	}
	hres, err := he.Run(roots[0])
	if err != nil {
		return nil, err
	}

	b := &HybridBench{
		Scale:                log2ceil(g.NumVertices()),
		Vertices:             g.NumVertices(),
		Edges:                g.NumEdges(),
		EdgeFactor:           16,
		Seed:                 cfg.Seed + 42,
		Roots:                len(roots),
		TopDownMTEPS:         tdMTEPS,
		HybridMTEPS:          hybMTEPS,
		Speedup:              stats.Ratio(hybMTEPS, tdMTEPS),
		Directions:           bfs.DirectionString(hres.Directions),
		SwitchLevel:          switchLevel(hres.Directions),
		PredictedSwitchLevel: model.PredictedSwitchLevel(predicted),
	}
	pd := make([]bfs.Direction, len(predicted))
	for i, bu := range predicted {
		if bu {
			pd[i] = bfs.DirBottomUp
		}
	}
	b.PredictedDirections = bfs.DirectionString(pd)
	for _, s := range hres.Trace.Steps {
		b.Levels = append(b.Levels, HybridLevel{
			Step:      s.Step,
			Direction: bfs.Direction(btoi(s.BottomUp)).String(),
			Frontier:  s.Frontier,
			Edges:     s.Edges,
		})
	}

	// Measured bytes/edge: instrument-accounted bytes over examined edges.
	if tr := hres.Trace.Traffic; tr != nil && hres.EdgesTraversed > 0 {
		var bytes int64
		for _, st := range numa.Structures() {
			bytes += tr.Total(st)
		}
		b.BytesPerEdgeMeasured = float64(bytes) / float64(hres.EdgesTraversed)
	}

	// Model bytes/edge: blend evaluated on the measured workload shape.
	tdwH, buw := splitHybridTrace(g.NumVertices(), hres.Trace, tdw)
	if buw.Edges > 0 {
		hp, err := model.PredictHybrid(HostPlatform(), tdwH, buw, 1)
		if err == nil {
			b.BytesPerEdgeModel = hp.BytesPerEdge
			b.ModelMTEPS = hp.MTEPS
		}
	}

	// Distance-oracle section, on the same graph instance.
	b.Index, err = indexBench(cfg, g, index.PolicyDegree)
	if err != nil {
		return nil, err
	}

	// Auto-tuning ablation over the full analogue suite.
	b.Tuning, err = TuneReport(cfg)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// splitHybridTrace separates a hybrid run's trace into the model's two
// workloads: the top-down levels (Workload) and the aggregated bottom-up
// levels (BUWorkload). Scanned is bounded above by the unvisited count
// entering each bottom-up level (the VIS full-word skip only lowers it).
func splitHybridTrace(n int, rt *trace.RunTrace, base model.Workload) (model.Workload, model.BUWorkload) {
	td := base
	td.Vertices = int64(n)
	td.Visited, td.Edges, td.Depth = 1, 0, 0 // source counts as visited
	bu := model.BUWorkload{Vertices: int64(n)}
	visited := int64(1)
	for _, s := range rt.Steps {
		if s.BottomUp {
			bu.Levels++
			bu.Edges += s.Edges
			bu.Claimed += s.NewVertices
			bu.Scanned += int64(n) - visited
		} else {
			td.Depth++
			td.Edges += s.Edges
			td.Visited += s.NewVertices
		}
		visited += s.NewVertices
	}
	if td.Depth == 0 {
		td.Depth = 1
	}
	return td, bu
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
