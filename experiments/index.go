package experiments

// Distance-oracle index benchmark: the build cost and point-query
// throughput of the landmark labeling (package index) against the
// obvious alternative for a point distance — one direction-optimizing
// hybrid BFS per query. The oracle answers from two label merge-joins;
// the BFS touches the whole reachable component. The interesting
// numbers are the QPS ratio and what fraction of random pairs the
// labeling certifies exactly (uncertified pairs fall back to a BFS in
// the serving layer, so the effective speedup interpolates with the
// exact rate).

import (
	"context"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/index"
	"fastbfs/internal/stats"
	"fastbfs/internal/xrand"
)

// IndexBench is the distance-oracle section of the benchmark artifact
// (BENCH_<scale>.json) and the per-policy row of `bfsbench index`.
type IndexBench struct {
	Landmarks int    `json:"landmarks"`
	Policy    string `json:"policy"`
	// Build cost and label footprint.
	BuildMS          float64 `json:"build_ms"`
	LabelBytes       int64   `json:"label_bytes"`
	EntriesPerVertex float64 `json:"entries_per_vertex"`
	// Point-query throughput over a fixed random-pair workload.
	Queries   int     `json:"queries"`
	ExactRate float64 `json:"exact_rate"` // fraction certified (no fallback)
	IndexQPS  float64 `json:"index_qps"`
	BFSQPS    float64 `json:"bfs_qps"` // one hybrid BFS per point query
	// QPSSpeedup is IndexQPS / BFSQPS — the headline oracle win.
	QPSSpeedup float64 `json:"qps_speedup"`
}

// indexBench builds one labeling over g and measures it against
// per-query hybrid BFS on a shared random-pair workload.
func indexBench(cfg Config, g *graph.Graph, pol index.Policy) (*IndexBench, error) {
	opts := cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 1)
	opts.Hybrid = true

	// Share the cached transpose between the build's backward sweeps
	// and the hybrid engine's bottom-up levels, as the daemon does.
	in := bfs.InAdjacency(g)
	start := time.Now()
	ix, err := index.Build(context.Background(), g, index.Options{
		Policy:  pol,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		In:      in,
	})
	if err != nil {
		return nil, err
	}
	buildMS := float64(time.Since(start).Microseconds()) / 1e3

	n := g.NumVertices()
	rng := xrand.New(cfg.Seed ^ 0x1db31db3)
	pairs := make([][2]uint32, 1<<15)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}

	// Oracle side: every pair, timed; the sink keeps the joins live.
	var exact int
	var sink int64
	qStart := time.Now()
	for _, p := range pairs {
		a := ix.Query(p[0], p[1])
		sink += int64(a.Dist)
		if a.Exact {
			exact++
		}
	}
	qElapsed := time.Since(qStart)

	// BFS side: one full hybrid traversal per point query. A handful of
	// runs gives a stable per-query cost — each run is milliseconds.
	e, err := bfs.NewEngine(g, opts)
	if err != nil {
		return nil, err
	}
	if _, err := e.Run(pairs[0][0]); err != nil { // warmup
		return nil, err
	}
	bfsRuns := min(len(pairs), 24)
	bStart := time.Now()
	for i := 0; i < bfsRuns; i++ {
		res, err := e.Run(pairs[i][0])
		if err != nil {
			return nil, err
		}
		sink += int64(res.Depth(pairs[i][1]))
	}
	bElapsed := time.Since(bStart)
	_ = sink

	indexQPS := float64(len(pairs)) / qElapsed.Seconds()
	bfsQPS := float64(bfsRuns) / bElapsed.Seconds()
	return &IndexBench{
		Landmarks:        len(ix.Landmarks),
		Policy:           ix.Policy.String(),
		BuildMS:          buildMS,
		LabelBytes:       ix.LabelBytes(),
		EntriesPerVertex: float64(ix.Entries()) / float64(n),
		Queries:          len(pairs),
		ExactRate:        float64(exact) / float64(len(pairs)),
		IndexQPS:         indexQPS,
		BFSQPS:           bfsQPS,
		QPSSpeedup:       stats.Ratio(indexQPS, bfsQPS),
	}, nil
}

// Index benchmarks the landmark oracle on the hybrid ablation graph,
// one row per selection policy.
func Index(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	g, err := hybridGraph(cfg)
	if err != nil {
		return nil, err
	}
	defer bfs.ReleaseInAdjacency(g)
	t := stats.NewTable("policy", "landmarks", "build ms", "label KiB",
		"entries/v", "exact %", "index QPS", "BFS QPS", "speedup")
	for _, pol := range []index.Policy{index.PolicyDegree, index.PolicyRandom} {
		b, err := indexBench(cfg, g, pol)
		if err != nil {
			return nil, err
		}
		cfg.logf("index: %s: build %.0fms, %.1f entries/v, %.0f%% exact, %.0fx QPS",
			b.Policy, b.BuildMS, b.EntriesPerVertex, 100*b.ExactRate, b.QPSSpeedup)
		t.AddRow(b.Policy, b.Landmarks, b.BuildMS, float64(b.LabelBytes)/1024,
			b.EntriesPerVertex, 100*b.ExactRate, b.IndexQPS, b.BFSQPS, b.QPSSpeedup)
	}
	return t, nil
}

// IndexReport runs the degree-policy benchmark for the JSON artifact.
func IndexReport(cfg Config) (*IndexBench, error) {
	cfg = cfg.withDefaults()
	g, err := hybridGraph(cfg)
	if err != nil {
		return nil, err
	}
	defer bfs.ReleaseInAdjacency(g)
	return indexBench(cfg, g, index.PolicyDegree)
}
