package experiments

import (
	"fmt"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/stats"
	"fastbfs/model"
)

// Scaling reproduces the paper's §V-B socket-scaling claims: measured
// near-linear 2-socket scaling (1.98x on UR, 1.93x on R-MAT) and the
// projected further 1.8x on a 4-socket Nehalem-EX. Host wall-clock
// columns sweep the worker count (bounded by real cores); the model
// columns carry the socket scaling, including the cross-platform EX
// projection in wall time per edge.
func Scaling(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	ep := model.NehalemX5570()
	ex := model.NehalemEX7560()
	t := stats.NewTable("graph",
		"meas w1 MTEPS", "meas w2", "meas w4",
		"model 1S cyc/e", "model 2S", "2S scaling", "EX-4S scaling")
	for _, family := range []string{"UR", "RMAT"} {
		n := cfg.scaled(16 << 20)
		var g *graph.Graph
		var err error
		if family == "UR" {
			g, err = gen.UniformRandom(n, 16, cfg.Seed+11)
		} else {
			g, err = gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
				Scale: log2ceil(n), EdgeFactor: 16}, cfg.Seed+12)
		}
		if err != nil {
			return nil, err
		}
		roots := pickRoots(g, cfg.Roots)

		meas := make([]float64, 3)
		for i, w := range []int{1, 2, 4} {
			o := cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 1)
			o.Workers = w
			rs, err := measure(g, o, roots)
			if err != nil {
				return nil, err
			}
			meas[i] = rs.MTEPS
			cfg.logf("scaling: %s w=%d: %.1f MTEPS", family, w, rs.MTEPS)
		}

		wl, _, err := instrumented(g,
			cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 2), roots[0], 2)
		if err != nil {
			return nil, err
		}
		wl = cfg.paperScale(wl)
		p1, err := model.Predict(ep, wl, 1)
		if err != nil {
			return nil, err
		}
		p2, err := model.Predict(ep, wl, 2)
		if err != nil {
			return nil, err
		}
		p4, err := model.Predict(ex, wl, 4)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%s |V|=%s deg=16", family, stats.HumanCount(int64(n))),
			meas[0], meas[1], meas[2],
			p1.CyclesPerEdge, p2.CyclesPerEdge,
			stats.Ratio(p1.CyclesPerEdge, p2.CyclesPerEdge),
			stats.Ratio(p2.TimePerEdgeNS(ep), p4.TimePerEdgeNS(ex)))
	}
	return t, nil
}
