package experiments

import (
	"strings"
	"testing"
)

// tiny returns a config that shrinks every workload to smoke-test size.
func tiny() Config {
	return Config{Scale: 4096, Roots: 2, Seed: 1}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	s := tab.String()
	if !strings.Contains(s, "QPI") || !strings.Contains(s, "GBps") {
		t.Errorf("Table1 missing expected rows:\n%s", s)
	}
}

func TestModelCheckMatchesPaper(t *testing.T) {
	tab, err := ModelCheck()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 9 {
		t.Fatalf("ModelCheck rows = %d, want 9", tab.NumRows())
	}
	// Every model/paper ratio sits in the row's last column; spot-check
	// the rendering contains no zeros.
	if strings.Contains(tab.String(), " 0.000") {
		t.Errorf("ModelCheck has a zero ratio:\n%s", tab.String())
	}
}

func TestFig4Smoke(t *testing.T) {
	tab, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 8 { // 4 sizes x 2 degrees
		t.Fatalf("Fig4 rows = %d, want 8", tab.NumRows())
	}
}

func TestFig5Smoke(t *testing.T) {
	tab, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 6 { // 3 families x 2 degrees
		t.Fatalf("Fig5 rows = %d, want 6", tab.NumRows())
	}
}

func TestFig6Smoke(t *testing.T) {
	tab, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 12 { // 2 families x 2 degrees x 3 sizes
		t.Fatalf("Fig6 rows = %d, want 12", tab.NumRows())
	}
}

func TestFig7AndTable2Smoke(t *testing.T) {
	tab, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 10 {
		t.Fatalf("Table2 rows = %d, want 10", tab.NumRows())
	}
	f7, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if f7.NumRows() != 10 {
		t.Fatalf("Fig7 rows = %d, want 10", f7.NumRows())
	}
}

func TestFig8Smoke(t *testing.T) {
	tab, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 8 { // 2 families x 2 degrees x 2 sizes
		t.Fatalf("Fig8 rows = %d, want 8", tab.NumRows())
	}
}

func TestAblateSmoke(t *testing.T) {
	tab, err := Ablate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 13 { // 9 variants + serial + async + work-stealing + reorder
		t.Fatalf("Ablate rows = %d, want 13", tab.NumRows())
	}
}

func TestScaledFloors(t *testing.T) {
	c := Config{Scale: 1 << 30}.withDefaults()
	if got := c.scaled(2 << 20); got != 1024 {
		t.Errorf("scaled floor = %d, want 1024", got)
	}
	if got := c.cacheBytes(); got != 4<<10 {
		t.Errorf("cacheBytes floor = %d, want 4096", got)
	}
}

func TestPickRootsNonEmpty(t *testing.T) {
	cfg := tiny()
	g, err := fig5Graph(cfg.withDefaults(), "RMAT", 8)
	if err != nil {
		t.Fatal(err)
	}
	roots := pickRoots(g, 5)
	if len(roots) == 0 {
		t.Fatal("no roots picked")
	}
	for _, r := range roots {
		if g.Degree(r) == 0 {
			t.Errorf("root %d has degree 0", r)
		}
	}
}

func TestScalingSmoke(t *testing.T) {
	tab, err := Scaling(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("Scaling rows = %d, want 2", tab.NumRows())
	}
}
