package experiments

import (
	"fmt"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/stats"
	"fastbfs/tune"
)

// Auto-tuning ablation: does the model-picked profile beat the fixed
// defaults? Each analogue graph is measured twice — engine defaults
// versus tune.Calibrate's profile applied to the same options — with
// the default run's examined-edge counts as the shared TEPS numerator
// (the hybrid-comparable accounting of hybrid.go). Graphs the tuner
// declines to calibrate (too small, degenerate) serve as the corner
// cases: their profile IS the default, so the ratio is measurement
// noise around 1.0 by construction.

// tuneCase is one analogue-suite graph for the ablation.
type tuneCase struct {
	name string
	g    *graph.Graph
}

// tuneSuite builds the ablation workloads: the R-MAT hybrid workload,
// a high-diameter grid, an extreme-skew star, and a disconnected
// forest of chains — the four shapes that stress different knobs
// (direction switching, binning, degenerate probes, unreachable mass).
func tuneSuite(cfg Config) ([]tuneCase, error) {
	n := cfg.scaled(16 << 20)
	rmat, err := hybridGraph(cfg)
	if err != nil {
		return nil, err
	}
	side := 1
	for side*side < n {
		side++
	}
	grid, err := gen.Grid2D(side, side, 2, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	star, err := starGraph(n)
	if err != nil {
		return nil, err
	}
	forest, err := chainForest(n, 64)
	if err != nil {
		return nil, err
	}
	return []tuneCase{
		{"rmat", rmat},
		{"grid", grid},
		{"star", star},
		{"forest", forest},
	}, nil
}

// starGraph builds a symmetric star: hub 0 adjacent to every spoke.
// Maximum degree skew — the mean degree is ~2 while the hub holds half
// of all adjacency entries.
func starGraph(n int) (*graph.Graph, error) {
	if n < 2 {
		n = 2
	}
	degrees := make([]int32, n)
	degrees[0] = int32(n - 1)
	for v := 1; v < n; v++ {
		degrees[v] = 1
	}
	return graph.FromDegrees(degrees, func(v uint32, adj []uint32) {
		if v == 0 {
			for i := range adj {
				adj[i] = uint32(i + 1)
			}
			return
		}
		adj[0] = 0
	})
}

// chainForest builds `chains` disjoint bidirectional chains over n
// vertices: a disconnected, diameter-heavy forest where any single
// probe sees only 1/chains of the graph.
func chainForest(n, chains int) (*graph.Graph, error) {
	if chains < 1 {
		chains = 1
	}
	per := n / chains
	if per < 2 {
		per = 2
	}
	var edges []graph.Edge
	for c := 0; c < chains; c++ {
		base := c * per
		if base+per > n {
			break
		}
		for i := 0; i < per-1; i++ {
			u, v := uint32(base+i), uint32(base+i+1)
			edges = append(edges, graph.Edge{U: u, V: v}, graph.Edge{U: v, V: u})
		}
	}
	return graph.FromEdges(n, edges)
}

// TuneGraphBench is one graph's tuned-vs-default measurement.
type TuneGraphBench struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// DefaultMTEPS and TunedMTEPS share the default run's examined-edge
	// numerator (comparable accounting); Ratio is tuned/default.
	DefaultMTEPS float64 `json:"default_mteps"`
	TunedMTEPS   float64 `json:"tuned_mteps"`
	Ratio        float64 `json:"ratio"`
	// Profile is what the tuner chose (Source "default" = declined).
	Profile *tune.Profile `json:"profile"`
}

// TuneBench is the auto-tuning section of BENCH_<scale>.json.
type TuneBench struct {
	Graphs []TuneGraphBench `json:"graphs"`
}

// tuneRepeats is the best-of count per configuration; the max filters
// scheduler noise from short scaled-down runs.
const tuneRepeats = 3

// measureTuned measures one graph under defaults and under the tuned
// profile, best-of-tuneRepeats each, on the shared numerator.
func measureTuned(cfg Config, tc tuneCase) (TuneGraphBench, error) {
	def := cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 1)
	roots := pickRoots(tc.g, cfg.Roots)

	prof := tune.Calibrate(tc.g, tune.Options{
		Sockets:    1,
		CacheBytes: def.CacheBytes,
		L2Bytes:    def.L2Bytes,
	})
	tuned := prof.Apply(def)

	var defMTEPS, tunedMTEPS float64
	var refEdges []int64
	for i := 0; i < tuneRepeats; i++ {
		m, edges, err := tdReference(tc.g, def, roots)
		if err != nil {
			return TuneGraphBench{}, fmt.Errorf("%s default: %w", tc.name, err)
		}
		if m > defMTEPS {
			defMTEPS, refEdges = m, edges
		}
	}
	for i := 0; i < tuneRepeats; i++ {
		m, _, err := comparable(tc.g, tuned, roots, refEdges)
		if err != nil {
			return TuneGraphBench{}, fmt.Errorf("%s tuned: %w", tc.name, err)
		}
		if m > tunedMTEPS {
			tunedMTEPS = m
		}
	}
	return TuneGraphBench{
		Graph:        tc.name,
		Vertices:     tc.g.NumVertices(),
		Edges:        tc.g.NumEdges(),
		DefaultMTEPS: defMTEPS,
		TunedMTEPS:   tunedMTEPS,
		Ratio:        stats.Ratio(tunedMTEPS, defMTEPS),
		Profile:      prof,
	}, nil
}

// TuneReport runs the ablation over the analogue suite.
func TuneReport(cfg Config) (*TuneBench, error) {
	cfg = cfg.withDefaults()
	suite, err := tuneSuite(cfg)
	if err != nil {
		return nil, err
	}
	rep := &TuneBench{}
	for _, tc := range suite {
		row, err := measureTuned(cfg, tc)
		if err != nil {
			return nil, err
		}
		cfg.logf("tune: %s: default %.1f vs tuned %.1f MTEPS* (%.2fx) [%s]",
			row.Graph, row.DefaultMTEPS, row.TunedMTEPS, row.Ratio, row.Profile.Summary())
		rep.Graphs = append(rep.Graphs, row)
	}
	return rep, nil
}

// Tune renders the auto-tuning ablation as a table.
func Tune(cfg Config) (*stats.Table, error) {
	rep, err := TuneReport(cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("graph", "|V|", "|E|", "default MTEPS*", "tuned MTEPS*", "ratio", "profile")
	for _, row := range rep.Graphs {
		t.AddRow(row.Graph, row.Vertices, row.Edges,
			row.DefaultMTEPS, row.TunedMTEPS, row.Ratio, row.Profile.Summary())
	}
	return t, nil
}
