// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on scaled-down synthetic workloads. Each
// Fig*/Table* function returns a rendered table whose rows mirror the
// paper's series; cmd/bfsbench prints them and EXPERIMENTS.md records
// paper-versus-measured values.
//
// Scaling: the paper's graphs reach 256M vertices on a 96 GB dual-socket
// Nehalem. Config.Scale divides all vertex counts and the simulated LLC
// size by the same factor (default 64), which preserves the position of
// every cache-pressure crossover relative to graph size. Multi-socket
// behaviour is emulated (worker groups + traffic accounting); wall-clock
// numbers reflect the host, while the analytical model — validated
// against the paper's worked example — carries the socket-scaling shape.
package experiments

import (
	"fmt"
	"io"
	"time"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/model"
)

// Config controls the experiment harness.
type Config struct {
	// Scale divides the paper's graph sizes (and the simulated LLC).
	// 1 reproduces paper-size graphs (needs ~100 GB); the default 64
	// fits laptop-class hosts.
	Scale int
	// Workers is the traversal pool size; 0 means GOMAXPROCS.
	Workers int
	// Roots is the number of starting vertices averaged per graph
	// (the paper uses five).
	Roots int
	// Seed makes every generated workload reproducible.
	Seed uint64
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 64
	}
	if c.Roots <= 0 {
		c.Roots = 5
	}
	if c.Seed == 0 {
		c.Seed = 20120521 // IPDPS 2012 started May 21
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// scaled divides a paper-sized vertex count by the scale factor,
// keeping at least 1024 vertices.
func (c Config) scaled(paperVertices int64) int {
	v := paperVertices / int64(c.Scale)
	if v < 1024 {
		v = 1024
	}
	return int(v)
}

// cacheBytes returns the simulated LLC size: the paper's 8 MiB divided
// by the scale factor, floored at 4 KiB.
func (c Config) cacheBytes() int64 {
	b := int64(8<<20) / int64(c.Scale)
	if b < 4<<10 {
		b = 4 << 10
	}
	return b
}

// options returns the engine options for a named scheme at the given
// socket count, with the scaled cache geometry applied.
func (c Config) options(vis bfs.VISKind, scheme bfs.Scheme, sockets int) bfs.Options {
	o := bfs.Default(sockets)
	o.VIS = vis
	o.Scheme = scheme
	o.Workers = c.Workers
	o.CacheBytes = c.cacheBytes()
	o.L2Bytes = maxI64(c.cacheBytes()/32, 1<<10) // keep the paper's LLC:L2 ratio
	return o
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// pickRoots returns up to n starting vertices with above-average degree
// (R-MAT graphs have isolated vertices; the paper traverses >98% of
// edges per run, which needs roots inside the giant component).
func pickRoots(g *graph.Graph, n int) []uint32 {
	if n < 1 {
		n = 1
	}
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	roots := make([]uint32, 0, n)
	step := g.NumVertices()/(n*8) + 1
	for v := 0; v < g.NumVertices() && len(roots) < n; v += step {
		if float64(g.Degree(uint32(v))) >= avg {
			roots = append(roots, uint32(v))
		}
	}
	for v := 0; v < g.NumVertices() && len(roots) < n; v++ {
		if g.Degree(uint32(v)) > 0 {
			roots = append(roots, uint32(v))
		}
	}
	if len(roots) == 0 {
		roots = append(roots, 0)
	}
	return roots
}

// RunStats aggregates repeated traversals of one configuration.
type RunStats struct {
	MTEPS   float64 // average over roots, work-based as in the paper
	Steps   int     // max depth observed
	Edges   int64   // average traversed edges
	Visited int64   // average visited vertices
	Elapsed time.Duration
	LastRun *bfs.Result
}

// measure builds an engine once and averages MTEPS over the roots —
// the paper's methodology (five starting vertices, mean performance).
// One untimed warmup run faults in the engine's buffers so the first
// timed root is not charged for page faults.
func measure(g *graph.Graph, o bfs.Options, roots []uint32) (RunStats, error) {
	e, err := bfs.NewEngine(g, o)
	if err != nil {
		return RunStats{}, err
	}
	if _, err := e.Run(roots[0]); err != nil {
		return RunStats{}, err
	}
	var rs RunStats
	var mtepsSum float64
	for _, r := range roots {
		res, err := e.Run(r)
		if err != nil {
			return RunStats{}, err
		}
		mtepsSum += res.MTEPS()
		rs.Edges += res.EdgesTraversed
		rs.Visited += res.Visited
		rs.Elapsed += res.Elapsed
		if res.Steps > rs.Steps {
			rs.Steps = res.Steps
		}
		rs.LastRun = res
	}
	n := int64(len(roots))
	rs.MTEPS = mtepsSum / float64(n)
	rs.Edges /= n
	rs.Visited /= n
	return rs, nil
}

// paperScale projects a measured (scaled-down) workload back to paper
// size: counts multiply by the scale factor (depth and α are size-class
// properties and stay), and N_VIS/N_PBV are recomputed against the real
// 8 MiB Nehalem LLC so the model sees the paper's cache pressure.
func (c Config) paperScale(w model.Workload) model.Workload {
	s := int64(c.Scale)
	w.Vertices *= s
	w.Visited *= s
	w.Edges *= s
	nvis := int((w.Vertices/8 + (4 << 20) - 1) / (4 << 20))
	if nvis < 1 {
		nvis = 1
	}
	w.NVIS = nvis
	w.NPBV = 2 * nvis
	return w
}

// instrumented runs one traced traversal and extracts the model
// workload (measured |V'|, |E'|, D, α values).
func instrumented(g *graph.Graph, o bfs.Options, root uint32, sockets int) (model.Workload, *bfs.Result, error) {
	o.Instrument = true
	e, err := bfs.NewEngine(g, o)
	if err != nil {
		return model.Workload{}, nil, err
	}
	res, err := e.Run(root)
	if err != nil {
		return model.Workload{}, nil, err
	}
	nVIS, nPBV := e.Geometry()
	w := model.WorkloadFromTrace(g.NumVertices(), res.Trace, nPBV, nVIS, sockets)
	return w, res, nil
}
