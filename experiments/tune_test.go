package experiments

import (
	"encoding/json"
	"os"
	"testing"

	"fastbfs/bfs"
	"fastbfs/tune"
)

// TestTuneReportTiny smoke-tests the ablation plumbing at toy scale:
// all four analogue graphs measured, profiles attached, JSON-clean
// (this is what rides into BENCH_<scale>.json).
func TestTuneReportTiny(t *testing.T) {
	rep, err := TuneReport(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Graphs) != 4 {
		t.Fatalf("suite rows = %d, want 4 (rmat, grid, star, forest)", len(rep.Graphs))
	}
	for _, row := range rep.Graphs {
		if row.Profile == nil {
			t.Fatalf("%s: nil profile", row.Graph)
		}
		if row.DefaultMTEPS <= 0 || row.TunedMTEPS <= 0 {
			t.Errorf("%s: degenerate measurement %+v", row.Graph, row)
		}
		// The skew/disconnection corner cases fall under the tuner's edge
		// guard at toy scale, so their profile must be the zero-risk
		// default (the R-MAT's edge factor keeps it above the guard).
		if row.Graph == "star" || row.Graph == "forest" {
			if row.Profile.Source != tune.SourceDefault {
				t.Errorf("%s: degenerate graph calibrated (%s)", row.Graph, row.Profile.Summary())
			}
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}

	tab, err := Tune(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("Tune table rows = %d, want 4", tab.NumRows())
	}
}

// TestTuneSmoke is the CI acceptance gate (TUNE_SMOKE=1, skipped when
// unset): on the scale-14 analogue suite the tuned profile must hold
// >= default throughput within noise on every graph, enable the hybrid
// on the R-MAT, and — exactness first — depths from a tuned engine must
// byte-match the serial reference.
func TestTuneSmoke(t *testing.T) {
	if os.Getenv("TUNE_SMOKE") == "" {
		t.Skip("set TUNE_SMOKE=1 to run the scale-14 tuning smoke")
	}
	cfg := Config{Scale: 1024, Roots: 3, Seed: 20120521}
	rep, err := TuneReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sawHybrid bool
	for _, row := range rep.Graphs {
		t.Logf("%s: default %.1f vs tuned %.1f MTEPS* (%.2fx) [%s]",
			row.Graph, row.DefaultMTEPS, row.TunedMTEPS, row.Ratio, row.Profile.Summary())
		// "Within noise": best-of-N runs under the race detector still
		// jitter; 0.8x is the same floor the bench-trajectory job uses.
		if row.Ratio < 0.8 {
			t.Errorf("%s: tuned profile regressed beyond noise: %.2fx", row.Graph, row.Ratio)
		}
		if row.Graph == "rmat" {
			sawHybrid = row.Profile.Hybrid
			if row.Ratio < 1.0 {
				t.Errorf("rmat: tuned slower than default (%.2fx); the headline win is gone", row.Ratio)
			}
		}
	}
	if !sawHybrid {
		t.Error("tuner did not enable the hybrid on the scale-14 R-MAT")
	}

	// Exactness: tuned engine depths byte-match the serial reference.
	g, err := hybridGraph(cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	def := cfg.withDefaults().options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, 1)
	prof := tune.Calibrate(g, tune.Options{Sockets: 1, CacheBytes: def.CacheBytes, L2Bytes: def.L2Bytes})
	e, err := bfs.NewEngine(g, prof.Apply(def))
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range pickRoots(g, 2) {
		res, err := e.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := bfs.RunSerial(g, root)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if got, want := res.Depth(uint32(v)), ref.Depth(uint32(v)); got != want {
				t.Fatalf("root %d: tuned depth(%d) = %d, want %d", root, v, got, want)
			}
		}
	}
}
