package experiments

import (
	"fmt"

	"fastbfs/bfs"
	"fastbfs/graph"
	"fastbfs/graph/gen"
	"fastbfs/internal/stats"
	"fastbfs/model"
)

// visVariants lists the Figure 4 series in legend order.
var visVariants = []bfs.VISKind{
	bfs.VISNone, bfs.VISAtomicBit, bfs.VISByte, bfs.VISBit, bfs.VISPartitioned,
}

// Fig4 reproduces Figure 4: relative performance of the VIS
// representations versus the no-VIS baseline on Uniformly Random graphs
// of increasing size. Paper shape: the atomic bitmap barely beats no-VIS
// (≤1.1×); the atomic-free byte map wins until it outgrows the LLC; the
// bit map wins 1.4–1.9× on large graphs; partitioning adds ≈1.3× at the
// largest size.
func Fig4(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	paperSizes := []int64{2 << 20, 8 << 20, 64 << 20, 256 << 20}
	degrees := []int{8, 32}
	t := stats.NewTable("graph", "noVIS MTEPS",
		"atomic-bit", "AF-byte", "AF-bit", "AF-part",
		"mdl:atomic", "mdl:byte", "mdl:bit", "mdl:part", "N_VIS")
	for _, deg := range degrees {
		for _, paperV := range paperSizes {
			n := cfg.scaled(paperV)
			label := fmt.Sprintf("UR |V|=%s deg=%d", stats.HumanCount(int64(n)), deg)
			cfg.logf("fig4: generating %s", label)
			g, err := gen.UniformRandom(n, deg, cfg.Seed+uint64(paperV)+int64ToU64(deg))
			if err != nil {
				return nil, err
			}
			roots := pickRoots(g, cfg.Roots)
			row := make([]float64, 0, len(visVariants))
			nVIS := 1
			for _, vis := range visVariants {
				o := cfg.options(vis, bfs.SchemeLoadBalanced, 2)
				rs, err := measure(g, o, roots)
				if err != nil {
					return nil, err
				}
				row = append(row, rs.MTEPS)
				if vis == bfs.VISPartitioned {
					e, err := bfs.NewEngine(g, o)
					if err != nil {
						return nil, err
					}
					nVIS, _ = e.Geometry()
				}
				cfg.logf("fig4: %s %v: %.1f MTEPS", label, vis, rs.MTEPS)
			}

			// Model projection at the PAPER's size (the measured columns
			// are the scaled graphs on this host; the model carries the
			// paper-scale cache crossovers). N_VIS at paper size follows
			// §III-A against the real 8 MiB LLC.
			paperNVIS := int((paperV/8 + (4 << 20) - 1) / (4 << 20))
			if paperNVIS < 1 {
				paperNVIS = 1
			}
			w := model.Workload{
				Vertices: paperV,
				Visited:  paperV, // UR graphs are fully reachable
				Edges:    paperV * int64(deg),
				Depth:    9,
				NVIS:     paperNVIS,
				NPBV:     2 * paperNVIS,
			}
			mrel := make([]float64, 0, 4)
			var mBase float64
			for i, variant := range []model.VISVariant{
				model.VariantNone, model.VariantAtomicBit, model.VariantByte,
				model.VariantBit, model.VariantPartitioned,
			} {
				pr, err := model.PredictVIS(model.NehalemX5570(), w, 2, variant)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					mBase = pr.MTEPS
					continue
				}
				mrel = append(mrel, stats.Ratio(pr.MTEPS, mBase))
			}

			base := row[0]
			t.AddRow(label, base,
				stats.Ratio(row[1], base), stats.Ratio(row[2], base),
				stats.Ratio(row[3], base), stats.Ratio(row[4], base),
				mrel[0], mrel[1], mrel[2], mrel[3], nVIS)
		}
	}
	return t, nil
}

func int64ToU64(d int) uint64 { return uint64(d) * 1000003 }

// fig5Graph builds one of the Figure 5 workloads.
func fig5Graph(cfg Config, family string, deg int) (*graph.Graph, error) {
	n := cfg.scaled(16 << 20) // the paper uses |V| = 16M for this figure
	seed := cfg.Seed + int64ToU64(deg)
	switch family {
	case "UR":
		return gen.UniformRandom(n, deg, seed)
	case "RMAT":
		scale := log2ceil(n)
		return gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
			Scale: scale, EdgeFactor: deg}, seed)
	case "Stress":
		return gen.StressBipartite(n, deg, seed)
	}
	return nil, fmt.Errorf("experiments: unknown family %q", family)
}

func log2ceil(n int) int {
	s := 0
	for (1 << s) < n {
		s++
	}
	return s
}

// Fig5 reproduces Figure 5: the three multi-socket schemes on UR, R-MAT
// and stress-case graphs, normalized to the unoptimized scheme, with the
// analytical model's projection beside the measurement. Paper shape: the
// unoptimized scheme is always worst; UR shows no load-balancing gain;
// R-MAT gains ≈5–10%; the stress case gains up to 30%.
func Fig5(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	const sockets = 2
	t := stats.NewTable("graph", "no-opt", "ms-aware", "ms-lb",
		"model:no-opt", "model:ms-aware", "model:ms-lb", "alphaAdj")
	for _, family := range []string{"UR", "RMAT", "Stress"} {
		for _, deg := range []int{8, 32} {
			g, err := fig5Graph(cfg, family, deg)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s deg=%d", family, deg)
			cfg.logf("fig5: %s (V=%d E=%d)", label, g.NumVertices(), g.NumEdges())
			roots := pickRoots(g, cfg.Roots)

			meas := make([]float64, 3)
			for i, scheme := range []bfs.Scheme{
				bfs.SchemeSinglePhase, bfs.SchemeSocketAware, bfs.SchemeLoadBalanced,
			} {
				rs, err := measure(g, cfg.options(bfs.VISPartitioned, scheme, sockets), roots)
				if err != nil {
					return nil, err
				}
				meas[i] = rs.MTEPS
			}

			// Model projection from one instrumented run.
			w, _, err := instrumented(g, cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, sockets),
				roots[0], sockets)
			if err != nil {
				return nil, err
			}
			w = cfg.paperScale(w)
			plat := model.NehalemX5570()
			pSP, err := model.PredictSinglePhase(plat, w, sockets)
			if err != nil {
				return nil, err
			}
			pST, err := model.PredictStatic(plat, w, sockets)
			if err != nil {
				return nil, err
			}
			pLB, err := model.Predict(plat, w, sockets)
			if err != nil {
				return nil, err
			}
			t.AddRow(label,
				1.0, stats.Ratio(meas[1], meas[0]), stats.Ratio(meas[2], meas[0]),
				1.0, stats.Ratio(pST.MTEPS, pSP.MTEPS), stats.Ratio(pLB.MTEPS, pSP.MTEPS),
				w.AlphaAdj)
		}
	}
	return t, nil
}

// baselineOptions returns the Agarwal-et-al-style configuration the
// paper compares against in Figure 6: atomic bitmap updates, no
// two-phase binning, no rearrangement, prefetch or SIMD binning.
func (c Config) baselineOptions(sockets int) bfs.Options {
	o := c.options(bfs.VISAtomicBit, bfs.SchemeSinglePhase, sockets)
	o.Rearrange = false
	o.BatchBinning = false
	o.PrefetchDist = 0
	return o
}

// Fig6 reproduces Figure 6: our full scheme versus the previous-best
// baseline on UR and R-MAT graphs across sizes and degrees. Paper
// shape: 1.5–3× on the same platform.
func Fig6(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	const sockets = 2
	t := stats.NewTable("graph", "baseline MTEPS", "ours MTEPS", "speedup", "model MTEPS")
	for _, family := range []string{"UR", "RMAT"} {
		for _, deg := range []int{8, 32} {
			for _, paperV := range []int64{4 << 20, 16 << 20, 64 << 20} {
				n := cfg.scaled(paperV)
				seed := cfg.Seed + uint64(paperV) + int64ToU64(deg)
				var g *graph.Graph
				var err error
				if family == "UR" {
					g, err = gen.UniformRandom(n, deg, seed)
				} else {
					g, err = gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
						Scale: log2ceil(n), EdgeFactor: deg}, seed)
				}
				if err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s |V|=%s deg=%d", family, stats.HumanCount(int64(n)), deg)
				roots := pickRoots(g, cfg.Roots)
				base, err := measure(g, cfg.baselineOptions(sockets), roots)
				if err != nil {
					return nil, err
				}
				ours, err := measure(g, cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, sockets), roots)
				if err != nil {
					return nil, err
				}
				w, _, err := instrumented(g,
					cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, sockets), roots[0], sockets)
				if err != nil {
					return nil, err
				}
				pred, err := model.Predict(model.NehalemX5570(), cfg.paperScale(w), sockets)
				if err != nil {
					return nil, err
				}
				cfg.logf("fig6: %s base=%.1f ours=%.1f", label, base.MTEPS, ours.MTEPS)
				t.AddRow(label, base.MTEPS, ours.MTEPS,
					stats.Ratio(ours.MTEPS, base.MTEPS), pred.MTEPS)
			}
		}
	}
	return t, nil
}

// Fig7 reproduces Figure 7: traversal rates on the real-world-graph
// analogues of Table II, ours versus the re-implemented previous-best
// baseline (as the paper does for graphs with no published numbers).
func Fig7(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	const sockets = 2
	analogues, err := BuildAnalogues(cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("graph", "V", "E", "depth",
		"baseline MTEPS", "ours MTEPS", "speedup", "model MTEPS")
	for _, a := range analogues {
		roots := pickRoots(a.G, cfg.Roots)
		cfg.logf("fig7: %s (V=%d E=%d)", a.Name, a.G.NumVertices(), a.G.NumEdges())
		base, err := measure(a.G, cfg.baselineOptions(sockets), roots)
		if err != nil {
			return nil, err
		}
		ours, err := measure(a.G, cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, sockets), roots)
		if err != nil {
			return nil, err
		}
		w, res, err := instrumented(a.G,
			cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, sockets), roots[0], sockets)
		if err != nil {
			return nil, err
		}
		pred, err := model.Predict(model.NehalemX5570(), cfg.paperScale(w), sockets)
		if err != nil {
			return nil, err
		}
		t.AddRow(a.Name,
			stats.HumanCount(int64(a.G.NumVertices())),
			stats.HumanCount(a.G.NumEdges()),
			res.Steps-1,
			base.MTEPS, ours.MTEPS, stats.Ratio(ours.MTEPS, base.MTEPS), pred.MTEPS)
	}
	return t, nil
}

// Fig8 reproduces Figure 8: cycles per traversed edge in Phase-I and
// Phase-II, measured versus the analytical model, on UR and R-MAT graphs
// across sizes and degrees. Measured cycles use the host wall time at
// the paper's nominal 2.93 GHz; the paper matched to 5–10% on the target
// hardware — here the *shape* across graphs is the reproduction target.
func Fig8(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	const sockets = 2
	plat := model.NehalemX5570()
	host := HostPlatform()
	t := stats.NewTable("graph", "meas P1", "model P1", "meas P2", "model P2",
		"meas total", "model total", "cal total", "meas/cal")
	for _, family := range []string{"UR", "RMAT"} {
		for _, deg := range []int{8, 16} {
			for _, paperV := range []int64{8 << 20, 64 << 20} {
				n := cfg.scaled(paperV)
				seed := cfg.Seed + uint64(paperV) + int64ToU64(deg)
				var g *graph.Graph
				var err error
				if family == "UR" {
					g, err = gen.UniformRandom(n, deg, seed)
				} else {
					g, err = gen.RMAT(gen.RMATParams{A: 0.57, B: 0.19, C: 0.19,
						Scale: log2ceil(n), EdgeFactor: deg}, seed)
				}
				if err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s |V|=%s deg=%d", family, stats.HumanCount(int64(n)), deg)
				roots := pickRoots(g, 1)
				w, res, err := instrumented(g,
					cfg.options(bfs.VISPartitioned, bfs.SchemeLoadBalanced, sockets), roots[0], sockets)
				if err != nil {
					return nil, err
				}
				mp1, mp2, mr := res.Trace.PhaseCyclesPerEdge(plat.FreqGHz)
				pred, err := model.Predict(plat, w, sockets)
				if err != nil {
					return nil, err
				}
				// Calibrated column: the same model evaluated with this
				// host's measured bandwidths (one socket, since the
				// sockets here are simulated).
				cal, err := model.Predict(host, w, 1)
				if err != nil {
					return nil, err
				}
				measTotal := mp1 + mp2 + mr
				cfg.logf("fig8: %s meas=%.2f model=%.2f cal=%.2f cyc/edge",
					label, measTotal, pred.CyclesPerEdge, cal.CyclesPerEdge)
				t.AddRow(label, mp1, pred.CyclesPhase1, mp2, pred.CyclesPhase2,
					measTotal, pred.CyclesPerEdge, cal.CyclesPerEdge,
					stats.Ratio(measTotal, cal.CyclesPerEdge))
			}
		}
	}
	return t, nil
}
