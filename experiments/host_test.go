package experiments

import "testing"

func TestHostPlatform(t *testing.T) {
	p := HostPlatform()
	if p.BMem <= 0 || p.BLLCToL2 <= 0 || p.BL2ToLLC <= 0 {
		t.Fatalf("uncalibrated bandwidths: %+v", p)
	}
	if p.Sockets != 1 || p.FreqGHz != 2.93 {
		t.Errorf("fixed fields wrong: %+v", p)
	}
	if p.LLCBytes <= 0 || p.L2Bytes <= 0 {
		t.Errorf("cache sizes: %+v", p)
	}
	// Second call returns the cached measurement.
	q := HostPlatform()
	if q.BMem != p.BMem {
		t.Error("HostPlatform not cached")
	}
}

func TestReadCacheBytes(t *testing.T) {
	if got := readCacheBytes("/nonexistent", 42); got != 42 {
		t.Errorf("fallback = %d", got)
	}
	dir := t.TempDir()
	write := func(name, content string) string {
		p := dir + "/" + name
		if err := writeFile(p, content); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if got := readCacheBytes(write("k", "512K\n"), 1); got != 512<<10 {
		t.Errorf("512K parsed as %d", got)
	}
	if got := readCacheBytes(write("m", "16M"), 1); got != 16<<20 {
		t.Errorf("16M parsed as %d", got)
	}
	if got := readCacheBytes(write("plain", "12345"), 1); got != 12345 {
		t.Errorf("plain parsed as %d", got)
	}
	if got := readCacheBytes(write("junk", "not-a-size"), 7); got != 7 {
		t.Errorf("junk fallback = %d", got)
	}
}
